//! Whole-pipeline check for the adaptive posting representation: a cube
//! built, queried, updated, and serialized with `AdaptivePosting` must
//! answer *byte*-identically (exact `f64` bits, not approximate equality)
//! to the same pipeline run with each fixed representation.

use scube_bitmap::{AdaptivePosting, DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_cube::{CellCoords, CubeBuilder, CubeExplorer, CubeSnapshot, Materialize, UpdateBatch};
use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};
use scube_segindex::IndexValues;

/// A small but non-trivial population: three attributes, skewed value
/// frequencies (so the adaptive heuristic actually picks different
/// variants across postings), 60 rows over 4 units.
fn build_db() -> TransactionDb {
    let schema =
        Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
            .unwrap();
    let mut b = TransactionDbBuilder::new(schema);
    for i in 0..60u32 {
        let sex = if i % 7 == 0 { "F" } else { "M" }; // skewed: F sparse, M dense
        let age = format!("a{}", i % 3);
        let region = if i < 45 { "north" } else { "south" };
        let unit = format!("u{}", (i / 5) % 4);
        b.add_row(&[vec![sex.to_string()], vec![age], vec![region.to_string()]], &unit).unwrap();
    }
    b.finish()
}

/// Exact bit pattern of every field of an `IndexValues` — byte identity,
/// not epsilon closeness.
fn value_bits(v: &IndexValues) -> Vec<Option<u64>> {
    let f = |x: Option<f64>| x.map(f64::to_bits);
    vec![
        Some(v.minority),
        Some(v.total),
        Some(u64::from(v.num_units)),
        f(v.dissimilarity),
        f(v.gini),
        f(v.information),
        f(v.isolation),
        f(v.interaction),
        f(v.atkinson),
    ]
}

/// Full cell inventory of a snapshot's cube with exact value bits, sorted
/// by coordinates (cell iteration order is not part of the contract).
fn cube_answers<P: Posting>(snap: &CubeSnapshot<P>) -> Vec<(CellCoords, Vec<Option<u64>>)> {
    let mut cells: Vec<_> = snap.cube().cells().map(|(c, v)| (c.clone(), value_bits(v))).collect();
    cells.sort_by(|a, b| (&a.0.sa, &a.0.ca).cmp(&(&b.0.sa, &b.0.ca)));
    cells
}

fn batch() -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for i in 0..10 {
        let sex = if i % 2 == 0 { "F" } else { "X" }; // "X" is a brand-new label
        batch.add_row(&[("sex", sex), ("age", "a0"), ("region", "south")], "u9");
    }
    batch.remove_tid(0);
    batch.remove_tid(44);
    batch
}

fn pipeline_matches<Fixed: Posting + Send + Sync>(materialize: Materialize) {
    let db = build_db();
    let builder = CubeBuilder::new().min_support(2).materialize(materialize);

    let mut adaptive: CubeSnapshot<AdaptivePosting> = CubeSnapshot::from_db(&db, &builder).unwrap();
    let mut fixed: CubeSnapshot<Fixed> = CubeSnapshot::from_db(&db, &builder).unwrap();
    assert_eq!(cube_answers(&adaptive), cube_answers(&fixed), "fresh build");

    // Explorer fallbacks (non-materialized coordinates) must agree too.
    let mut ea: CubeExplorer<AdaptivePosting> = CubeExplorer::new(&db);
    let mut ef: CubeExplorer<Fixed> = CubeExplorer::new(&db);
    for coords in [
        CellCoords::apex(),
        CellCoords::new(vec![0], vec![]),
        CellCoords::new(vec![0, 2], vec![5]),
        CellCoords::new(vec![], vec![5]),
    ] {
        let a = ea.values_at(&coords).unwrap();
        let f = ef.values_at(&coords).unwrap();
        assert_eq!(value_bits(&a), value_bits(&f), "explorer at {coords:?}");
    }

    // Incremental maintenance: same batch, same resulting cube.
    adaptive.apply_update(&batch()).unwrap();
    fixed.apply_update(&batch()).unwrap();
    assert_eq!(cube_answers(&adaptive), cube_answers(&fixed), "after update");

    // Adaptive snapshots roundtrip byte-stably through serialization.
    let bytes = adaptive.to_bytes();
    let loaded = CubeSnapshot::<AdaptivePosting>::from_bytes(&bytes).unwrap();
    assert_eq!(loaded.to_bytes(), bytes, "adaptive snapshot roundtrip");
    assert_eq!(cube_answers(&loaded), cube_answers(&fixed), "after roundtrip");
}

#[test]
fn adaptive_matches_ewah_pipeline() {
    pipeline_matches::<EwahBitmap>(Materialize::AllFrequent);
    pipeline_matches::<EwahBitmap>(Materialize::ClosedOnly);
}

#[test]
fn adaptive_matches_dense_pipeline() {
    pipeline_matches::<DenseBitmap>(Materialize::AllFrequent);
}

#[test]
fn adaptive_matches_tidvec_pipeline() {
    pipeline_matches::<TidVec>(Materialize::ClosedOnly);
}
