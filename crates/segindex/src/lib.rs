#![warn(missing_docs)]
//! Social-science segregation indexes.
//!
//! SCube's cube cells are filled with segregation indexes computed over a
//! set of *organizational units* (schools, neighbourhoods, job sectors,
//! communities of companies, …). For each unit `i` we know the minority
//! head-count `m_i` and the total head-count `t_i`; writing `M = Σ m_i`,
//! `T = Σ t_i`, `P = M/T` and `p_i = m_i/t_i`, the crate implements the six
//! indexes the paper names (§2), following Massey & Denton's classic
//! *The Dimensions of Residential Segregation* formulations:
//!
//! | Index | Family | Formula |
//! |-------|--------|---------|
//! | [`dissimilarity`] | evenness | `D = ½ Σ \|m_i/M − (t_i−m_i)/(T−M)\|` |
//! | [`gini`] | evenness | `G = Σ_{i,j} t_i t_j \|p_i−p_j\| / (2T²P(1−P))` |
//! | [`information`] | evenness | Theil's `H = Σ t_i (E − E_i) / (T·E)` |
//! | [`isolation`] | exposure | `xPx = Σ (m_i/M)(m_i/t_i)` |
//! | [`interaction`] | exposure | `xPy = Σ (m_i/M)((t_i−m_i)/t_i)` |
//! | [`atkinson`] | evenness | `A(b) = 1 − (P/(1−P))·[Σ (1−p_i)^{1−b} p_i^b t_i / (PT)]^{1/(1−b)}` |
//!
//! Indexes are *not additive* (the reason SCube needs a specialised cube
//! builder rather than ordinary roll-ups), and they are undefined for
//! degenerate populations; every function returns `Option<f64>` with `None`
//! exactly when the social-science definition divides by zero (`M = 0`, and
//! for the evenness family also `M = T`). This maps to the `-` cells of the
//! paper's Fig. 1.

//! Two extensions beyond the paper's six indexes (flagged in DESIGN.md):
//! the [`indexes::correlation_ratio`] (eta², from the R `seg` package the
//! paper cites) and [`significance`] — Monte-Carlo permutation tests that
//! separate real segregation from the small-unit bias of random allocation.

pub mod counts;
pub mod indexes;
pub mod significance;

pub use counts::{UnitCell, UnitCounts};
pub use indexes::{
    atkinson, correlation_ratio, dissimilarity, gini, information, interaction, isolation,
    IndexValues, MeasureSet, SegIndex, DEFAULT_ATKINSON_B,
};
pub use significance::{PermutationTest, TestResult};
