//! The six segregation indexes and the batch evaluator.

use crate::counts::UnitCounts;

/// Default Atkinson shape parameter (the symmetric `b = 0.5` choice used
/// throughout the segregation literature).
pub const DEFAULT_ATKINSON_B: f64 = 0.5;

/// Clamp tiny floating-point excursions back into `[0, 1]`.
fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Dissimilarity index `D ∈ [0,1]`.
///
/// `D = ½ Σ |m_i/M − (t_i−m_i)/(T−M)|`: the share of either group that
/// would have to relocate for all units to mirror the overall minority
/// proportion. 0 on a perfectly even distribution, 1 under complete
/// segregation. `None` when `M = 0` or `M = T`.
pub fn dissimilarity(c: &UnitCounts) -> Option<f64> {
    let m_total = c.minority() as f64;
    let maj_total = (c.total() - c.minority()) as f64;
    if c.minority() == 0 || c.minority() == c.total() {
        return None;
    }
    let sum: f64 = c
        .cells()
        .iter()
        .map(|u| {
            let minority_share = u.minority as f64 / m_total;
            let majority_share = (u.total - u.minority) as f64 / maj_total;
            (minority_share - majority_share).abs()
        })
        .sum();
    Some(clamp01(sum / 2.0))
}

/// Gini segregation index `G ∈ [0,1]`.
///
/// `G = Σ_i Σ_j t_i t_j |p_i − p_j| / (2 T² P(1−P))`. Computed in
/// `O(n log n)` by sorting units on `p_i` and using prefix sums (the naive
/// double sum is quadratic; at the paper's scale — millions of individuals
/// mapped to thousands of units — that matters). `None` when `M = 0` or
/// `M = T`.
pub fn gini(c: &UnitCounts) -> Option<f64> {
    if c.minority() == 0 || c.minority() == c.total() {
        return None;
    }
    let t_total = c.total() as f64;
    let p = c.minority() as f64 / t_total;

    let mut units: Vec<(f64, f64)> =
        c.cells().iter().map(|u| (u.minority as f64 / u.total as f64, u.total as f64)).collect();
    units.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Σ_{i<j} t_i t_j (p_j − p_i)  with prefix sums over sorted p.
    let mut weight_prefix = 0.0; // Σ_{i<j} t_i
    let mut weighted_p_prefix = 0.0; // Σ_{i<j} t_i p_i
    let mut num = 0.0;
    for &(p_j, t_j) in &units {
        num += t_j * (p_j * weight_prefix - weighted_p_prefix);
        weight_prefix += t_j;
        weighted_p_prefix += t_j * p_j;
    }
    let den = t_total * t_total * p * (1.0 - p);
    Some(clamp01(num / den))
}

/// Binary entropy `−(p ln p + (1−p) ln (1−p))`, with `0·ln 0 = 0`.
fn entropy(p: f64) -> f64 {
    let mut e = 0.0;
    if p > 0.0 {
        e -= p * p.ln();
    }
    if p < 1.0 {
        e -= (1.0 - p) * (1.0 - p).ln();
    }
    e
}

/// Information index (Theil's H) `∈ [0,1]`.
///
/// `H = Σ t_i (E − E_i) / (T·E)` where `E` is the entropy of the overall
/// minority split and `E_i` the entropy within unit `i`. `None` when
/// `M = 0` or `M = T` (then `E = 0`).
pub fn information(c: &UnitCounts) -> Option<f64> {
    if c.minority() == 0 || c.minority() == c.total() {
        return None;
    }
    let t_total = c.total() as f64;
    let e = entropy(c.minority() as f64 / t_total);
    let sum: f64 = c
        .cells()
        .iter()
        .map(|u| {
            let e_i = entropy(u.minority as f64 / u.total as f64);
            u.total as f64 * (e - e_i)
        })
        .sum();
    Some(clamp01(sum / (t_total * e)))
}

/// Isolation index `xPx`.
///
/// `xPx = Σ (m_i/M)(m_i/t_i)`: the minority-weighted average minority
/// share of the unit a random minority member finds around them. Ranges in
/// `[P, 1]`; `None` when `M = 0`.
pub fn isolation(c: &UnitCounts) -> Option<f64> {
    if c.minority() == 0 {
        return None;
    }
    let m_total = c.minority() as f64;
    let sum: f64 = c
        .cells()
        .iter()
        .map(|u| (u.minority as f64 / m_total) * (u.minority as f64 / u.total as f64))
        .sum();
    Some(clamp01(sum))
}

/// Interaction index `xPy`.
///
/// `xPy = Σ (m_i/M)((t_i−m_i)/t_i)`: the exposure of minority members to
/// the majority. For binary groups `xPx + xPy = 1`. `None` when `M = 0`.
pub fn interaction(c: &UnitCounts) -> Option<f64> {
    if c.minority() == 0 {
        return None;
    }
    let m_total = c.minority() as f64;
    let sum: f64 = c
        .cells()
        .iter()
        .map(|u| (u.minority as f64 / m_total) * ((u.total - u.minority) as f64 / u.total as f64))
        .sum();
    Some(clamp01(sum))
}

/// Atkinson index `A(b) ∈ [0,1]` with shape parameter `b ∈ (0,1)`.
///
/// `A = 1 − (P/(1−P)) · [ Σ (1−p_i)^{1−b} p_i^b t_i / (P·T) ]^{1/(1−b)}`.
/// `b` weights units where the minority is under- vs over-represented;
/// `b = 0.5` (the default) treats both symmetrically. `None` when `M = 0`,
/// `M = T`, or `b` outside `(0,1)`.
pub fn atkinson(c: &UnitCounts, b: f64) -> Option<f64> {
    if c.minority() == 0 || c.minority() == c.total() || !(0.0..1.0).contains(&b) || b == 0.0 {
        return None;
    }
    let t_total = c.total() as f64;
    let p = c.minority() as f64 / t_total;
    let sum: f64 = c
        .cells()
        .iter()
        .map(|u| {
            let p_i = u.minority as f64 / u.total as f64;
            (1.0 - p_i).powf(1.0 - b) * p_i.powf(b) * u.total as f64
        })
        .sum();
    let inner = (sum / (p * t_total)).powf(1.0 / (1.0 - b));
    Some(clamp01(1.0 - (p / (1.0 - p)) * inner))
}

/// Correlation ratio (eta², also `V`) — exposure adjusted for the overall
/// minority share: `V = (xPx − P) / (1 − P)`.
///
/// Unlike raw isolation, `V = 0` under perfect evenness regardless of `P`
/// and `V = 1` under complete segregation, which makes it comparable
/// across contexts with different minority shares. Provided as an
/// *extension* beyond the paper's six indexes (it ships in the R `seg`
/// package the paper cites); `None` when `M = 0` or `M = T`.
pub fn correlation_ratio(c: &UnitCounts) -> Option<f64> {
    if c.minority() == c.total() {
        return None;
    }
    let xpx = isolation(c)?;
    let p = c.minority() as f64 / c.total() as f64;
    Some(clamp01((xpx - p) / (1.0 - p)))
}

/// The six indexes the SCube system computes, as a closed enumeration
/// (the cube is "parametric to the indexes" — §2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegIndex {
    /// Dissimilarity index `D`.
    Dissimilarity,
    /// Gini segregation index `G`.
    Gini,
    /// Information index (Theil's `H`).
    Information,
    /// Isolation index `xPx`.
    Isolation,
    /// Interaction index `xPy`.
    Interaction,
    /// Atkinson index with the default shape `b = 0.5`.
    Atkinson,
}

impl SegIndex {
    /// All six indexes, in the paper's order.
    pub const ALL: [SegIndex; 6] = [
        SegIndex::Dissimilarity,
        SegIndex::Gini,
        SegIndex::Information,
        SegIndex::Isolation,
        SegIndex::Interaction,
        SegIndex::Atkinson,
    ];

    /// Compute this index over a histogram.
    pub fn compute(self, c: &UnitCounts) -> Option<f64> {
        match self {
            SegIndex::Dissimilarity => dissimilarity(c),
            SegIndex::Gini => gini(c),
            SegIndex::Information => information(c),
            SegIndex::Isolation => isolation(c),
            SegIndex::Interaction => interaction(c),
            SegIndex::Atkinson => atkinson(c, DEFAULT_ATKINSON_B),
        }
    }

    /// Short display name used in report headers.
    pub fn short_name(self) -> &'static str {
        match self {
            SegIndex::Dissimilarity => "D",
            SegIndex::Gini => "G",
            SegIndex::Information => "H",
            SegIndex::Isolation => "xPx",
            SegIndex::Interaction => "xPy",
            SegIndex::Atkinson => "A",
        }
    }

    /// Full display name.
    pub fn name(self) -> &'static str {
        match self {
            SegIndex::Dissimilarity => "dissimilarity",
            SegIndex::Gini => "gini",
            SegIndex::Information => "information",
            SegIndex::Isolation => "isolation",
            SegIndex::Interaction => "interaction",
            SegIndex::Atkinson => "atkinson",
        }
    }

    /// Parse a name produced by [`SegIndex::name`] or [`SegIndex::short_name`].
    pub fn parse(s: &str) -> Option<SegIndex> {
        match s.to_ascii_lowercase().as_str() {
            "dissimilarity" | "d" => Some(SegIndex::Dissimilarity),
            "gini" | "g" => Some(SegIndex::Gini),
            "information" | "h" | "theil" => Some(SegIndex::Information),
            "isolation" | "xpx" => Some(SegIndex::Isolation),
            "interaction" | "xpy" => Some(SegIndex::Interaction),
            "atkinson" | "a" => Some(SegIndex::Atkinson),
            _ => None,
        }
    }
}

impl std::fmt::Display for SegIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A non-empty subset of the six [`SegIndex`] measures, as a one-byte
/// bitset (bit `i` = `SegIndex::ALL[i]`).
///
/// This is the "the cube is parametric to the indexes" knob: a build folds
/// exactly the selected measures per cell and leaves the rest undefined.
/// The default is [`MeasureSet::FULL`] — every index, matching the
/// historical (and paper's) full-suite behavior bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeasureSet {
    bits: u8,
}

impl MeasureSet {
    const ALL_BITS: u8 = (1 << SegIndex::ALL.len()) - 1;

    /// Every index — the default.
    pub const FULL: MeasureSet = MeasureSet { bits: Self::ALL_BITS };

    fn bit(index: SegIndex) -> u8 {
        match index {
            SegIndex::Dissimilarity => 1 << 0,
            SegIndex::Gini => 1 << 1,
            SegIndex::Information => 1 << 2,
            SegIndex::Isolation => 1 << 3,
            SegIndex::Interaction => 1 << 4,
            SegIndex::Atkinson => 1 << 5,
        }
    }

    /// The set containing exactly one index.
    pub fn only(index: SegIndex) -> MeasureSet {
        MeasureSet { bits: Self::bit(index) }
    }

    /// This set plus one more index.
    #[must_use]
    pub fn with(self, index: SegIndex) -> MeasureSet {
        MeasureSet { bits: self.bits | Self::bit(index) }
    }

    /// Is `index` selected?
    pub fn contains(self, index: SegIndex) -> bool {
        self.bits & Self::bit(index) != 0
    }

    /// Does this set select all six indexes?
    pub fn is_full(self) -> bool {
        self.bits == Self::ALL_BITS
    }

    /// Number of selected indexes (always ≥ 1).
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// A `MeasureSet` is never empty; kept for clippy's `len`/`is_empty`
    /// pairing convention.
    pub fn is_empty(self) -> bool {
        false
    }

    /// The selected indexes, in [`SegIndex::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = SegIndex> {
        SegIndex::ALL.into_iter().filter(move |&i| self.contains(i))
    }

    /// The raw bitset byte (bit `i` = `SegIndex::ALL[i]`), for persistence.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Rebuild from a persisted byte; `None` when empty or when bits
    /// beyond the six known indexes are set.
    pub fn from_bits(bits: u8) -> Option<MeasureSet> {
        (bits != 0 && bits & !Self::ALL_BITS == 0).then_some(MeasureSet { bits })
    }

    /// Parse a comma-separated list of index names (long or short, as
    /// accepted by [`SegIndex::parse`]), or `"all"` for the full suite.
    /// `None` on an empty list or any unknown name.
    pub fn parse(s: &str) -> Option<MeasureSet> {
        if s.trim().eq_ignore_ascii_case("all") {
            return Some(MeasureSet::FULL);
        }
        let mut bits = 0u8;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return None;
            }
            bits |= Self::bit(SegIndex::parse(part)?);
        }
        MeasureSet::from_bits(bits)
    }
}

impl Default for MeasureSet {
    fn default() -> Self {
        MeasureSet::FULL
    }
}

impl std::fmt::Display for MeasureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for index in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            f.write_str(index.name())?;
        }
        Ok(())
    }
}

/// All six index values for one histogram, plus the population summary —
/// the payload of one cube cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IndexValues {
    /// Dissimilarity `D`.
    pub dissimilarity: Option<f64>,
    /// Gini `G`.
    pub gini: Option<f64>,
    /// Information (Theil) `H`.
    pub information: Option<f64>,
    /// Isolation `xPx`.
    pub isolation: Option<f64>,
    /// Interaction `xPy`.
    pub interaction: Option<f64>,
    /// Atkinson `A(b)`.
    pub atkinson: Option<f64>,
    /// Minority head-count `M`.
    pub minority: u64,
    /// Total head-count `T`.
    pub total: u64,
    /// Number of non-empty units `n`.
    pub num_units: u32,
}

impl IndexValues {
    /// Evaluate every index over the histogram, with the given Atkinson `b`.
    pub fn compute_with(c: &UnitCounts, atkinson_b: f64) -> IndexValues {
        IndexValues {
            dissimilarity: dissimilarity(c),
            gini: gini(c),
            information: information(c),
            isolation: isolation(c),
            interaction: interaction(c),
            atkinson: atkinson(c, atkinson_b),
            minority: c.minority(),
            total: c.total(),
            num_units: c.num_units() as u32,
        }
    }

    /// Evaluate every index with the default Atkinson shape.
    pub fn compute(c: &UnitCounts) -> IndexValues {
        Self::compute_with(c, DEFAULT_ATKINSON_B)
    }

    /// Evaluate only the selected indexes; unselected fields stay `None`.
    ///
    /// With [`MeasureSet::FULL`] this is bit-for-bit identical to
    /// [`IndexValues::compute_with`] — each fold runs the exact same code
    /// path over the exact same histogram.
    pub fn compute_masked(c: &UnitCounts, atkinson_b: f64, measures: MeasureSet) -> IndexValues {
        let sel = |i: SegIndex, v: fn(&UnitCounts) -> Option<f64>| {
            measures.contains(i).then(|| v(c)).flatten()
        };
        IndexValues {
            dissimilarity: sel(SegIndex::Dissimilarity, dissimilarity),
            gini: sel(SegIndex::Gini, gini),
            information: sel(SegIndex::Information, information),
            isolation: sel(SegIndex::Isolation, isolation),
            interaction: sel(SegIndex::Interaction, interaction),
            atkinson: measures
                .contains(SegIndex::Atkinson)
                .then(|| atkinson(c, atkinson_b))
                .flatten(),
            minority: c.minority(),
            total: c.total(),
            num_units: c.num_units() as u32,
        }
    }

    /// Overall minority proportion `P`, when defined.
    pub fn minority_proportion(&self) -> Option<f64> {
        (self.total > 0).then(|| self.minority as f64 / self.total as f64)
    }

    /// Set one index value — the write half of [`Self::get`], used by the
    /// columnar snapshot decoder to reassemble cells from value tables.
    pub fn set(&mut self, index: SegIndex, value: Option<f64>) {
        match index {
            SegIndex::Dissimilarity => self.dissimilarity = value,
            SegIndex::Gini => self.gini = value,
            SegIndex::Information => self.information = value,
            SegIndex::Isolation => self.isolation = value,
            SegIndex::Interaction => self.interaction = value,
            SegIndex::Atkinson => self.atkinson = value,
        }
    }

    /// Select one index value.
    pub fn get(&self, index: SegIndex) -> Option<f64> {
        match index {
            SegIndex::Dissimilarity => self.dissimilarity,
            SegIndex::Gini => self.gini,
            SegIndex::Information => self.information,
            SegIndex::Isolation => self.isolation,
            SegIndex::Interaction => self.interaction,
            SegIndex::Atkinson => self.atkinson,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::UnitCounts;

    fn counts(pairs: &[(u64, u64)]) -> UnitCounts {
        UnitCounts::from_pairs(pairs.iter().copied()).unwrap()
    }

    fn assert_close(a: Option<f64>, b: f64) {
        let a = a.expect("index should be defined");
        assert!((a - b).abs() < 1e-9, "expected {b}, got {a}");
    }

    #[test]
    fn hand_computed_two_units() {
        // Units (m,t): (10,20), (0,20) → M=10, T=40, P=0.25.
        // D = ½(|1 − 1/3| + |0 − 2/3|) = 2/3.
        // G: pairwise formula gives exactly 2/3 too.
        // A(0.5) = 1 − (0.25/0.75)·1 = 2/3.
        let c = counts(&[(10, 20), (0, 20)]);
        assert_close(dissimilarity(&c), 2.0 / 3.0);
        assert_close(gini(&c), 2.0 / 3.0);
        assert_close(atkinson(&c, 0.5), 2.0 / 3.0);
        assert_close(isolation(&c), 0.5);
        assert_close(interaction(&c), 0.5);
        // H computed by hand: E=0.562335, E1=ln2, E2=0.
        let e = 0.25f64.mul_add(-(0.25f64.ln()), -(0.75 * 0.75f64.ln()));
        let expected_h = (20.0 * (e - std::f64::consts::LN_2) + 20.0 * e) / (40.0 * e);
        assert_close(information(&c), expected_h);
    }

    #[test]
    fn uniform_distribution_scores_zero() {
        // Same minority share everywhere → evenness indexes are 0 and the
        // isolation index equals P.
        let c = counts(&[(5, 20), (10, 40), (25, 100)]);
        assert_close(dissimilarity(&c), 0.0);
        assert_close(gini(&c), 0.0);
        assert_close(information(&c), 0.0);
        assert_close(atkinson(&c, 0.5), 0.0);
        assert_close(isolation(&c), 0.25);
        assert_close(interaction(&c), 0.75);
    }

    #[test]
    fn complete_segregation_scores_one() {
        // Every unit is single-group → evenness indexes are 1,
        // isolation 1, interaction 0.
        let c = counts(&[(30, 30), (0, 70), (15, 15), (0, 5)]);
        assert_close(dissimilarity(&c), 1.0);
        assert_close(gini(&c), 1.0);
        assert_close(information(&c), 1.0);
        assert_close(atkinson(&c, 0.5), 1.0);
        assert_close(isolation(&c), 1.0);
        assert_close(interaction(&c), 0.0);
    }

    #[test]
    fn undefined_when_no_minority() {
        let c = counts(&[(0, 10), (0, 20)]);
        for idx in SegIndex::ALL {
            assert_eq!(idx.compute(&c), None, "{idx} should be undefined");
        }
    }

    #[test]
    fn evenness_undefined_when_all_minority() {
        let c = counts(&[(10, 10), (20, 20)]);
        assert_eq!(dissimilarity(&c), None);
        assert_eq!(gini(&c), None);
        assert_eq!(information(&c), None);
        assert_eq!(atkinson(&c, 0.5), None);
        // Exposure indexes remain defined: everyone is minority.
        assert_close(isolation(&c), 1.0);
        assert_close(interaction(&c), 0.0);
    }

    #[test]
    fn empty_population_undefined() {
        let c = counts(&[]);
        for idx in SegIndex::ALL {
            assert_eq!(idx.compute(&c), None);
        }
    }

    #[test]
    fn single_unit_is_unsegregated() {
        // With one unit the minority distribution is trivially even.
        let c = counts(&[(3, 10)]);
        assert_close(dissimilarity(&c), 0.0);
        assert_close(gini(&c), 0.0);
        assert_close(information(&c), 0.0);
        assert_close(atkinson(&c, 0.5), 0.0);
        assert_close(isolation(&c), 0.3);
    }

    #[test]
    fn atkinson_rejects_bad_shape() {
        let c = counts(&[(1, 2), (0, 2)]);
        assert_eq!(atkinson(&c, 0.0), None);
        assert_eq!(atkinson(&c, 1.0), None);
        assert_eq!(atkinson(&c, -0.5), None);
        assert_eq!(atkinson(&c, 1.5), None);
        assert!(atkinson(&c, 0.3).is_some());
    }

    #[test]
    fn atkinson_asymmetry() {
        // b ≠ 0.5 weights under/over-represented units differently, so the
        // index must change when the minority/majority roles swap.
        let c = counts(&[(8, 10), (2, 30)]);
        let swapped = counts(&[(2, 10), (28, 30)]);
        let a_03 = atkinson(&c, 0.3).unwrap();
        let a_03_swapped = atkinson(&swapped, 0.3).unwrap();
        assert!((a_03 - a_03_swapped).abs() > 1e-6);
        // ... while b = 0.5 is symmetric under group swap.
        let a_05 = atkinson(&c, 0.5).unwrap();
        let a_05_swapped = atkinson(&swapped, 0.5).unwrap();
        assert!((a_05 - a_05_swapped).abs() < 1e-9);
    }

    #[test]
    fn gini_matches_naive_quadratic() {
        let c = counts(&[(1, 10), (5, 10), (9, 10), (3, 30), (0, 7)]);
        // Naive O(n²) double sum.
        let t_total = c.total() as f64;
        let p = c.minority() as f64 / t_total;
        let mut num = 0.0;
        for a in c.cells() {
            for b in c.cells() {
                let pa = a.minority as f64 / a.total as f64;
                let pb = b.minority as f64 / b.total as f64;
                num += a.total as f64 * b.total as f64 * (pa - pb).abs();
            }
        }
        let naive = num / (2.0 * t_total * t_total * p * (1.0 - p));
        assert_close(gini(&c), naive);
    }

    #[test]
    fn dissimilarity_matches_fig1_style_example() {
        // A 3-unit example verifiable by hand:
        // units (m,t) = (4,10), (1,10), (5,20); M=10, T=40.
        // minority shares: .4 .1 .5 ; majority shares: 6/30 9/30 15/30.
        // D = ½(|.4−.2| + |.1−.3| + |.5−.5|) = 0.2
        let c = counts(&[(4, 10), (1, 10), (5, 20)]);
        assert_close(dissimilarity(&c), 0.2);
    }

    #[test]
    fn index_values_bundle() {
        let c = counts(&[(10, 20), (0, 20)]);
        let v = IndexValues::compute(&c);
        assert_eq!(v.minority, 10);
        assert_eq!(v.total, 40);
        assert_eq!(v.num_units, 2);
        assert_eq!(v.minority_proportion(), Some(0.25));
        for idx in SegIndex::ALL {
            assert_eq!(v.get(idx), idx.compute(&c), "{idx}");
        }
    }

    #[test]
    fn correlation_ratio_extremes() {
        // Perfect evenness → V = 0 (unlike xPx, which equals P).
        let even = counts(&[(5, 20), (10, 40)]);
        assert_close(correlation_ratio(&even), 0.0);
        // Complete segregation → V = 1.
        let total = counts(&[(10, 10), (0, 20)]);
        assert_close(correlation_ratio(&total), 1.0);
        // Mixed case: V = (xPx − P)/(1 − P), hand-computed.
        let c = counts(&[(10, 20), (0, 20)]);
        let expected = (0.5 - 0.25) / 0.75;
        assert_close(correlation_ratio(&c), expected);
        // Degenerate populations.
        assert_eq!(correlation_ratio(&counts(&[(0, 10)])), None);
        assert_eq!(correlation_ratio(&counts(&[(10, 10)])), None);
    }

    #[test]
    fn measure_set_basics() {
        assert_eq!(MeasureSet::default(), MeasureSet::FULL);
        assert!(MeasureSet::FULL.is_full());
        assert_eq!(MeasureSet::FULL.len(), SegIndex::ALL.len());
        assert!(!MeasureSet::FULL.is_empty());
        let g = MeasureSet::only(SegIndex::Gini);
        assert!(g.contains(SegIndex::Gini));
        assert!(!g.contains(SegIndex::Atkinson));
        assert!(!g.is_full());
        assert_eq!(g.len(), 1);
        let ga = g.with(SegIndex::Atkinson);
        assert_eq!(ga.iter().collect::<Vec<_>>(), vec![SegIndex::Gini, SegIndex::Atkinson]);
        // iter is in ALL order regardless of insertion order.
        let ag = MeasureSet::only(SegIndex::Atkinson).with(SegIndex::Gini);
        assert_eq!(ag, ga);
    }

    #[test]
    fn measure_set_bits_roundtrip() {
        for bits in 1u8..=0b11_1111 {
            let set = MeasureSet::from_bits(bits).expect("valid bits");
            assert_eq!(set.bits(), bits);
            assert_eq!(set.len(), bits.count_ones() as usize);
        }
        assert_eq!(MeasureSet::from_bits(0), None, "empty set is invalid");
        assert_eq!(MeasureSet::from_bits(0b100_0000), None, "unknown bit is invalid");
        assert_eq!(MeasureSet::from_bits(0xFF), None);
    }

    #[test]
    fn measure_set_parse_and_display() {
        assert_eq!(MeasureSet::parse("all"), Some(MeasureSet::FULL));
        assert_eq!(MeasureSet::parse("gini"), Some(MeasureSet::only(SegIndex::Gini)));
        assert_eq!(
            MeasureSet::parse("atkinson, d"),
            Some(MeasureSet::only(SegIndex::Atkinson).with(SegIndex::Dissimilarity))
        );
        assert_eq!(MeasureSet::parse(""), None);
        assert_eq!(MeasureSet::parse("gini,,d"), None);
        assert_eq!(MeasureSet::parse("gini,nope"), None);
        for bits in 1u8..=0b11_1111 {
            let set = MeasureSet::from_bits(bits).unwrap();
            assert_eq!(MeasureSet::parse(&set.to_string()), Some(set), "{set}");
        }
    }

    #[test]
    fn compute_masked_full_matches_compute_with() {
        let c = counts(&[(1, 10), (5, 10), (9, 10), (3, 30), (0, 7)]);
        for b in [0.3, 0.5, 0.7] {
            let full = IndexValues::compute_with(&c, b);
            let masked = IndexValues::compute_masked(&c, b, MeasureSet::FULL);
            assert_eq!(full, masked);
        }
    }

    #[test]
    fn compute_masked_subsets_match_per_index() {
        let c = counts(&[(4, 10), (1, 10), (5, 20)]);
        let full = IndexValues::compute_with(&c, 0.4);
        for bits in 1u8..=0b11_1111 {
            let set = MeasureSet::from_bits(bits).unwrap();
            let masked = IndexValues::compute_masked(&c, 0.4, set);
            assert_eq!(masked.minority, full.minority);
            assert_eq!(masked.total, full.total);
            assert_eq!(masked.num_units, full.num_units);
            for idx in SegIndex::ALL {
                let expected = if set.contains(idx) { full.get(idx) } else { None };
                // f64-bit-exact: the masked fold runs the same code path.
                assert_eq!(
                    masked.get(idx).map(f64::to_bits),
                    expected.map(f64::to_bits),
                    "{set} / {idx}"
                );
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for idx in SegIndex::ALL {
            assert_eq!(SegIndex::parse(idx.name()), Some(idx));
            assert_eq!(SegIndex::parse(idx.short_name()), Some(idx));
        }
        assert_eq!(SegIndex::parse("nope"), None);
    }
}
