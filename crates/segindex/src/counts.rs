//! Per-unit minority/total histograms — the input of every index.

use scube_common::{Result, ScubeError};

/// Head-counts of one organizational unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitCell {
    /// Unit identifier (cluster id, sector id, …).
    pub unit: u32,
    /// Members of the minority group inside the unit (`m_i`).
    pub minority: u64,
    /// Total members of the unit (`t_i`).
    pub total: u64,
}

/// The per-unit histogram `{(m_i, t_i)}` a segregation index is computed on.
///
/// Zero-population units are dropped on construction: they contribute
/// nothing to any index and keeping them would only distort `num_units`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitCounts {
    cells: Vec<UnitCell>,
    minority: u64,
    total: u64,
}

impl UnitCounts {
    /// Build from raw cells, validating `m_i ≤ t_i`.
    pub fn from_cells(cells: impl IntoIterator<Item = UnitCell>) -> Result<Self> {
        let mut kept = Vec::new();
        let mut minority = 0u64;
        let mut total = 0u64;
        for c in cells {
            if c.minority > c.total {
                return Err(ScubeError::Inconsistent(format!(
                    "unit {}: minority {} exceeds total {}",
                    c.unit, c.minority, c.total
                )));
            }
            if c.total == 0 {
                continue;
            }
            minority += c.minority;
            total += c.total;
            kept.push(c);
        }
        Ok(UnitCounts { cells: kept, minority, total })
    }

    /// Build from `(unit, minority, total)` triples.
    pub fn from_triples(triples: impl IntoIterator<Item = (u32, u64, u64)>) -> Result<Self> {
        Self::from_cells(triples.into_iter().map(|(unit, minority, total)| UnitCell {
            unit,
            minority,
            total,
        }))
    }

    /// Build from `(minority, total)` pairs with units numbered `0..n`
    /// (convenient in tests and index-only computations).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> Result<Self> {
        Self::from_cells(pairs.into_iter().enumerate().map(|(i, (minority, total))| UnitCell {
            unit: i as u32,
            minority,
            total,
        }))
    }

    /// The non-empty units.
    pub fn cells(&self) -> &[UnitCell] {
        &self.cells
    }

    /// `M`: total minority head-count.
    pub fn minority(&self) -> u64 {
        self.minority
    }

    /// `T`: total population head-count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `P = M/T`, or `None` for the empty population.
    pub fn minority_proportion(&self) -> Option<f64> {
        (self.total > 0).then(|| self.minority as f64 / self.total as f64)
    }

    /// Number of non-empty units (`n` in the paper's formulas).
    pub fn num_units(&self) -> usize {
        self.cells.len()
    }

    /// True when there is no population at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let c = UnitCounts::from_pairs([(10, 20), (0, 20)]).unwrap();
        assert_eq!(c.minority(), 10);
        assert_eq!(c.total(), 40);
        assert_eq!(c.minority_proportion(), Some(0.25));
        assert_eq!(c.num_units(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_population_units_dropped() {
        let c = UnitCounts::from_triples([(7, 0, 0), (9, 3, 5)]).unwrap();
        assert_eq!(c.num_units(), 1);
        assert_eq!(c.cells()[0].unit, 9);
    }

    #[test]
    fn minority_exceeding_total_rejected() {
        let err = UnitCounts::from_pairs([(6, 5)]).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn empty_population() {
        let c = UnitCounts::from_pairs([]).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.minority_proportion(), None);
    }
}
