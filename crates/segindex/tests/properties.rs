//! Property tests for the segregation indexes: range bounds, invariances,
//! and the social-science axioms the literature states for them.

use proptest::prelude::*;
use scube_segindex::{atkinson, IndexValues, SegIndex, UnitCounts};

/// Random histogram with at least one mixed unit so indexes are defined.
fn histogram() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..50, 1u64..100), 1..30).prop_map(|v| {
        v.into_iter()
            .map(|(m, extra)| (m, m + extra)) // total > minority ⇒ M < T
            .collect()
    })
}

fn counts(pairs: &[(u64, u64)]) -> UnitCounts {
    UnitCounts::from_pairs(pairs.iter().copied()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_indexes_within_unit_interval(pairs in histogram()) {
        let c = counts(&pairs);
        let v = IndexValues::compute(&c);
        for idx in SegIndex::ALL {
            if let Some(x) = v.get(idx) {
                prop_assert!((0.0..=1.0).contains(&x), "{idx} = {x} out of range");
                prop_assert!(x.is_finite());
            }
        }
    }

    #[test]
    fn exposure_indexes_are_complementary(pairs in histogram()) {
        let c = counts(&pairs);
        if let (Some(xpx), Some(xpy)) =
            (SegIndex::Isolation.compute(&c), SegIndex::Interaction.compute(&c))
        {
            prop_assert!((xpx + xpy - 1.0).abs() < 1e-9, "xPx+xPy = {}", xpx + xpy);
        }
    }

    #[test]
    fn isolation_at_least_overall_proportion(pairs in histogram()) {
        let c = counts(&pairs);
        if let (Some(xpx), Some(p)) =
            (SegIndex::Isolation.compute(&c), c.minority_proportion())
        {
            prop_assert!(xpx >= p - 1e-9, "xPx {xpx} below P {p}");
        }
    }

    #[test]
    fn scale_invariance(pairs in histogram(), k in 2u64..8) {
        // Multiplying every head-count by k leaves all indexes unchanged
        // (indexes depend on proportions, not absolute counts).
        let c1 = counts(&pairs);
        let scaled: Vec<(u64, u64)> = pairs.iter().map(|&(m, t)| (m * k, t * k)).collect();
        let c2 = counts(&scaled);
        for idx in SegIndex::ALL {
            match (idx.compute(&c1), idx.compute(&c2)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{idx}: {a} vs {b}"),
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn organizational_equivalence(pairs in histogram()) {
        // Splitting a unit into two parts with identical minority share
        // leaves every index unchanged (the "organizational equivalence"
        // axiom of segregation measurement).
        let c1 = counts(&pairs);
        let mut split: Vec<(u64, u64)> = Vec::new();
        for &(m, t) in &pairs {
            // Duplicate each unit: (2m, 2t) split into two (m, t) halves has
            // the same shares as one (2m, 2t) unit.
            split.push((m, t));
            split.push((m, t));
        }
        let doubled: Vec<(u64, u64)> = pairs.iter().map(|&(m, t)| (2 * m, 2 * t)).collect();
        let c2 = counts(&split);
        let c3 = counts(&doubled);
        for idx in SegIndex::ALL {
            let a = idx.compute(&c2);
            let b = idx.compute(&c3);
            match (a, b) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{idx}: {a} vs {b}"),
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
            }
        }
        let _ = c1;
    }

    #[test]
    fn empty_units_do_not_matter(pairs in histogram()) {
        let c1 = counts(&pairs);
        let mut with_empty = pairs.clone();
        with_empty.push((0, 0)); // dropped by construction
        // from_pairs drops zero-total units, so this must be identical.
        let c2 = UnitCounts::from_pairs(with_empty).unwrap();
        for idx in SegIndex::ALL {
            prop_assert_eq!(idx.compute(&c1), idx.compute(&c2));
        }
    }

    #[test]
    fn unit_order_does_not_matter(pairs in histogram(), seed in any::<u64>()) {
        let c1 = counts(&pairs);
        let mut shuffled = pairs.clone();
        // Cheap deterministic shuffle.
        let n = shuffled.len();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let c2 = counts(&shuffled);
        for idx in SegIndex::ALL {
            match (idx.compute(&c1), idx.compute(&c2)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{idx}"),
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn atkinson_defined_across_shapes(pairs in histogram(), b in 0.05f64..0.95) {
        let c = counts(&pairs);
        if let Some(a) = atkinson(&c, b) {
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn transfer_toward_evenness_never_increases_dissimilarity(
        pairs in proptest::collection::vec((0u64..50, 1u64..100), 2..20),
    ) {
        // Moving one minority member from an over-represented unit to an
        // under-represented one (keeping totals fixed) must not increase D.
        // The Pigou–Dalton argument holds exactly when neither unit crosses
        // the overall share P during the transfer, so require donor and
        // receiver to stay on their side of P afterwards.
        let pairs: Vec<(u64, u64)> = pairs.into_iter().map(|(m, e)| (m, m + e)).collect();
        let c = counts(&pairs);
        let (Some(d0), Some(p)) = (SegIndex::Dissimilarity.compute(&c), c.minority_proportion())
        else {
            return Ok(());
        };
        // Donor stays ≥ P after giving one; receiver stays ≤ P after receiving.
        let donor = pairs
            .iter()
            .position(|&(m, t)| m > 0 && (m as f64 - 1.0) / t as f64 >= p);
        let receiver = pairs
            .iter()
            .position(|&(m, t)| m < t && (m as f64 + 1.0) / t as f64 <= p);
        if let (Some(i), Some(j)) = (donor, receiver) {
            if i != j {
                let mut moved = pairs.clone();
                moved[i].0 -= 1;
                moved[j].0 += 1;
                let c2 = counts(&moved);
                if let Some(d1) = SegIndex::Dissimilarity.compute(&c2) {
                    prop_assert!(d1 <= d0 + 1e-9, "transfer increased D: {d0} -> {d1}");
                }
            }
        }
    }
}
