//! Fuzz-style property tests for the CSV layer: arbitrary field content —
//! including quotes, delimiters, and newlines — must round-trip exactly.

use proptest::prelude::*;
use scube_common::csv;

fn field() -> impl Strategy<Value = String> {
    // Mix of benign text and CSV-hostile characters.
    proptest::string::string_regex("[a-zA-Z0-9 ,;\"'\n\r|=*&-]{0,20}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_arbitrary_records(
        rows in proptest::collection::vec(
            proptest::collection::vec(field(), 1..6),
            0..10,
        ),
    ) {
        // CR-only line endings inside fields are the one thing the format
        // cannot represent unambiguously when unquoted; the writer quotes
        // them, so the roundtrip must hold regardless.
        let encoded = csv::to_string(rows.iter().map(|r| r.iter().map(|s| s.as_str())));
        let decoded = csv::parse_str(&encoded).unwrap();
        // Records that are entirely empty strings collapse to blank lines
        // (skipped by the reader); filter them from the expectation.
        let expected: Vec<Vec<String>> = rows
            .into_iter()
            .filter(|r| !(r.len() == 1 && r[0].is_empty()))
            .collect();
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn parser_never_panics(input in "[ -~\n\r\"]{0,200}") {
        // Any input either parses or errors; it must not panic.
        let _ = csv::parse_str(&input);
    }

    #[test]
    fn quoted_everything_roundtrips(
        rows in proptest::collection::vec(
            proptest::collection::vec(".*{0,15}", 2..5),
            1..6,
        ),
    ) {
        let encoded = csv::to_string(rows.iter().map(|r| r.iter().map(|s| s.as_str())));
        let decoded = csv::parse_str(&encoded).unwrap();
        prop_assert_eq!(decoded, rows);
    }
}
