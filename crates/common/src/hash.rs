//! Fast non-cryptographic hashing (FxHash).
//!
//! The itemset-mining and pair-counting inner loops hash short keys (item
//! ids, `(u32, u32)` pairs, small `Vec<u32>` itemsets) billions of times at
//! the paper's data scale. The standard library's SipHash is DoS-resistant
//! but measurably slow for these keys; SCube's workloads are offline
//! analytics on trusted inputs, so we use the Firefox/rustc "Fx" multiply-
//! rotate hash instead (the same trade-off rustc itself makes).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash function: `state = (state <<< 5 ^ word) * SEED` per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_word(u64::from(u32::from_le_bytes(chunk.try_into().unwrap())));
            bytes = rest;
        }
        for &b in bytes {
            self.add_word(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// Build an empty [`FxHashMap`] (convenience constructor).
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Build an empty [`FxHashSet`] (convenience constructor).
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

/// Build an [`FxHashMap`] with capacity for `n` entries.
pub fn fx_map_with_capacity<K, V>(n: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(n, Default::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<u32>, u64> = fx_map();
        for i in 0..1000u32 {
            m.insert(vec![i, i + 1], u64::from(i));
        }
        for i in 0..1000u32 {
            assert_eq!(m[&vec![i, i + 1]], u64::from(i));
        }
    }

    #[test]
    fn set_distinct_count() {
        let mut s: FxHashSet<(u32, u32)> = fx_set();
        for a in 0..50 {
            for b in 0..50 {
                s.insert((a, b));
            }
        }
        assert_eq!(s.len(), 2500);
    }

    #[test]
    fn byte_tail_paths() {
        // Exercise the 8-byte, 4-byte, and 1-byte write paths.
        for len in 0..=17usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h1 = FxHasher::default();
            h1.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish(), "len {len}");
        }
    }

    #[test]
    fn capacity_constructor() {
        let m: FxHashMap<u32, u32> = fx_map_with_capacity(100);
        assert!(m.capacity() >= 100);
    }
}
