//! Read-only memory-mapped files and the owned-or-mapped backing store
//! behind zero-copy snapshot serving.
//!
//! Snapshot format v4 lays its posting payloads out as fixed-width
//! little-endian tables precisely so a reader can serve them straight out
//! of the page cache: [`MmapFile`] maps a file read-only, [`ByteRegion`]
//! carves checked sub-ranges out of it, and [`MappedSlice`] reinterprets an
//! aligned region as a typed slice without copying. [`Store`] is the
//! enum that lets a container own its elements (`Vec<T>`, the build and
//! update paths) or borrow them from a mapping (the `open_mmap` path) behind
//! one `Deref<Target = [T]>` — algorithms over `&[T]` cannot tell the two
//! apart, and the first mutation transparently copies a mapped store onto
//! the heap ([`Store::vec_mut`]).
//!
//! Mapping is zero-copy only on 64-bit Unix; elsewhere [`MmapFile::open`]
//! falls back to reading the file into an 8-byte-aligned heap buffer, which
//! keeps every consumer correct (just not shared between processes).
//! Typed reinterpretation assumes a little-endian host, which callers must
//! check first (see [`MappedSlice::new`]); the fully-validating heap
//! loaders remain endian-independent.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

use crate::{Result, ScubeError};

/// Plain-old-data element types a mapped region may be reinterpreted as:
/// every bit pattern is a valid value and the alignment divides 8 (both the
/// mmap page base and the heap fallback buffer are 8-aligned, so an
/// 8-aligned *file offset* guarantees an aligned pointer).
///
/// # Safety
///
/// Implementors must be inhabited for every bit pattern, contain no
/// padding, and have `align_of::<Self>() <= 8`.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    // std already links the platform libc on unix targets; declaring the
    // two calls we need avoids a dependency on the `libc` crate.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

enum Inner {
    /// A live `mmap(2)` of the whole file.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *const u8, len: usize },
    /// The file's bytes copied into an 8-aligned heap buffer — the
    /// fallback when mapping is unavailable (or refused by the kernel).
    Heap { buf: Vec<u64>, len: usize },
}

/// A whole file opened read-only, memory-mapped when the platform allows
/// and copied into an aligned heap buffer otherwise. Dropping the last
/// clone of the owning [`Arc`] unmaps it; [`ByteRegion`]s keep it alive.
pub struct MmapFile {
    inner: Inner,
}

// The mapping is immutable for the lifetime of the value (PROT_READ +
// MAP_PRIVATE), so shared references may cross threads freely.
unsafe impl Send for MmapFile {}
unsafe impl Sync for MmapFile {}

impl MmapFile {
    /// Open `path` read-only and map (or read) its full contents.
    pub fn open(path: impl AsRef<Path>) -> Result<MmapFile> {
        let path = path.as_ref();
        let io = |e| ScubeError::io_at(path.display().to_string(), e);
        let file = std::fs::File::open(path).map_err(io)?;
        let len64 = file.metadata().map_err(io)?.len();
        let len = usize::try_from(len64).map_err(|_| {
            ScubeError::Inconsistent(format!("mmap: file is too large ({len64} bytes)"))
        })?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(MmapFile { inner: Inner::Mapped { ptr: ptr as *const u8, len } });
            }
            // Mapping refused (e.g. a pseudo-file): fall through to a read.
        }
        Self::read_heap(&file, len).map_err(io)
    }

    /// Fallback: read the file into a `Vec<u64>` so the base is 8-aligned
    /// and typed reinterpretation stays sound.
    fn read_heap(mut file: &std::fs::File, len: usize) -> std::io::Result<MmapFile> {
        use std::io::Read;
        let mut buf: Vec<u64> = vec![0; len.div_ceil(8)];
        let dst: &mut [u8] =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(dst)?;
        Ok(MmapFile { inner: Inner::Heap { buf, len } })
    }

    /// The file's contents.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped { len, .. } => *len,
            Inner::Heap { len, .. } => *len,
        }
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the contents are served by a live mapping rather than the
    /// heap fallback (diagnostics only; behavior is identical).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Inner::Mapped { .. } => true,
            Inner::Heap { .. } => false,
        }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Inner::Mapped { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

impl fmt::Debug for MmapFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MmapFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A byte range of an [`MmapFile`], keeping the mapping alive. Cheap to
/// clone (an `Arc` bump); sub-ranges are always bounds-checked.
#[derive(Clone)]
pub struct ByteRegion {
    file: Arc<MmapFile>,
    offset: usize,
    len: usize,
}

impl ByteRegion {
    /// The whole file as one region.
    pub fn whole(file: Arc<MmapFile>) -> ByteRegion {
        let len = file.len();
        ByteRegion { file, offset: 0, len }
    }

    /// A sub-range (`offset` relative to this region); `None` when it
    /// falls outside the region.
    pub fn slice(&self, offset: usize, len: usize) -> Option<ByteRegion> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        Some(ByteRegion { file: Arc::clone(&self.file), offset: self.offset + offset, len })
    }

    /// The region's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.file.as_bytes()[self.offset..self.offset + self.len]
    }

    /// Absolute byte offset of the region's start within the file —
    /// what alignment guarantees are stated against.
    pub fn file_offset(&self) -> usize {
        self.offset
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty region.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Debug for ByteRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ByteRegion").field("offset", &self.offset).field("len", &self.len).finish()
    }
}

/// An aligned [`ByteRegion`] reinterpreted as `[T]` without copying.
#[derive(Clone)]
pub struct MappedSlice<T: Pod> {
    region: ByteRegion,
    _marker: PhantomData<T>,
}

impl<T: Pod> MappedSlice<T> {
    /// Wrap a region as a typed slice. Fails when the region's length is
    /// not a multiple of `size_of::<T>()` or its *file offset* is not
    /// aligned to `align_of::<T>()` (both mapping bases are 8-aligned, so
    /// offset alignment implies pointer alignment for every [`Pod`] type).
    ///
    /// Callers must have checked the host is little-endian before trusting
    /// multi-byte values read through the slice.
    pub fn new(region: ByteRegion) -> Option<MappedSlice<T>> {
        if !region.len().is_multiple_of(std::mem::size_of::<T>())
            || !region.file_offset().is_multiple_of(std::mem::align_of::<T>())
        {
            return None;
        }
        Some(MappedSlice { region, _marker: PhantomData })
    }

    /// The typed contents.
    pub fn as_slice(&self) -> &[T] {
        let bytes = self.region.as_slice();
        let len = bytes.len() / std::mem::size_of::<T>();
        // Sound: Pod admits every bit pattern, the constructor checked
        // size and alignment, and the region pins the backing mapping.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, len) }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.region.len() / std::mem::size_of::<T>()
    }

    /// True for an empty slice.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }
}

impl<T: Pod> Deref for MappedSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for MappedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Element storage that is either owned (`Vec<T>`) or borrowed from a
/// mapped snapshot. Derefs to `[T]`, so read paths are oblivious; mutation
/// goes through [`Store::vec_mut`] / [`Store::take_vec`], which copy a
/// mapped store onto the heap first (copy-on-write).
#[derive(Clone)]
pub enum Store<T: Pod> {
    /// Heap-owned elements — the build, update, and heap-load paths.
    Owned(Vec<T>),
    /// Elements served in place from a mapped file.
    Mapped(MappedSlice<T>),
}

impl<T: Pod> Store<T> {
    /// The elements as a slice (either backing).
    pub fn as_slice(&self) -> &[T] {
        match self {
            Store::Owned(v) => v,
            Store::Mapped(m) => m.as_slice(),
        }
    }

    /// Mutable access to the owned vector, copying mapped contents onto
    /// the heap first. After this call the store is always `Owned`.
    pub fn vec_mut(&mut self) -> &mut Vec<T> {
        if let Store::Mapped(m) = self {
            *self = Store::Owned(m.as_slice().to_vec());
        }
        match self {
            Store::Owned(v) => v,
            Store::Mapped(_) => unreachable!("vec_mut materialized above"),
        }
    }

    /// Take the elements as an owned vector (copying if mapped), leaving
    /// an empty owned store behind — the moral equivalent of
    /// `std::mem::take` on a `Vec`.
    pub fn take_vec(&mut self) -> Vec<T> {
        std::mem::take(self.vec_mut())
    }

    /// Heap bytes attributable to this store: a mapped store occupies the
    /// page cache, not this process's heap.
    pub fn heap_capacity(&self) -> usize {
        match self {
            Store::Owned(v) => v.capacity(),
            Store::Mapped(_) => 0,
        }
    }

    /// True when backed by a mapping (diagnostics / tests).
    pub fn is_mapped(&self) -> bool {
        matches!(self, Store::Mapped(_))
    }
}

impl<T: Pod> Deref for Store<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Default for Store<T> {
    fn default() -> Self {
        Store::Owned(Vec::new())
    }
}

impl<T: Pod> From<Vec<T>> for Store<T> {
    fn from(v: Vec<T>) -> Self {
        Store::Owned(v)
    }
}

impl<T: Pod> From<MappedSlice<T>> for Store<T> {
    fn from(m: MappedSlice<T>) -> Self {
        Store::Mapped(m)
    }
}

impl<T: Pod + PartialEq> PartialEq for Store<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for Store<T> {}

impl<T: Pod + fmt::Debug> fmt::Debug for Store<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_and_reads_back() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = tmp("scube_mmap_roundtrip.bin", &data);
        let file = MmapFile::open(&path).unwrap();
        assert_eq!(file.len(), data.len());
        assert_eq!(file.as_bytes(), &data[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_fine() {
        let path = tmp("scube_mmap_empty.bin", &[]);
        let file = MmapFile::open(&path).unwrap();
        assert!(file.is_empty());
        assert_eq!(file.as_bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(MmapFile::open("/nonexistent/scube_mmap_nope.bin").is_err());
    }

    #[test]
    fn regions_are_bounds_checked() {
        let words: Vec<u64> = (0..64u64).collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let path = tmp("scube_mmap_regions.bin", &bytes);
        let file = Arc::new(MmapFile::open(&path).unwrap());
        let whole = ByteRegion::whole(Arc::clone(&file));
        assert_eq!(whole.len(), 512);
        assert!(whole.slice(0, 513).is_none());
        assert!(whole.slice(512, 1).is_none());
        assert!(whole.slice(usize::MAX, 2).is_none(), "offset overflow");
        let sub = whole.slice(8, 16).unwrap();
        assert_eq!(sub.file_offset(), 8);
        assert_eq!(sub.as_slice(), &bytes[8..24]);
        // Sub-slicing a sub-region composes.
        let subsub = sub.slice(8, 8).unwrap();
        assert_eq!(subsub.as_slice(), &bytes[16..24]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_slices_enforce_size_and_alignment() {
        if cfg!(target_endian = "big") {
            return; // typed views are little-endian-host only
        }
        let words: Vec<u64> = (100..164u64).collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let path = tmp("scube_mmap_typed.bin", &bytes);
        let file = Arc::new(MmapFile::open(&path).unwrap());
        let whole = ByteRegion::whole(Arc::clone(&file));
        let typed = MappedSlice::<u64>::new(whole.clone()).unwrap();
        assert_eq!(typed.as_slice(), &words[..]);
        // Misaligned offset and ragged length are rejected.
        assert!(MappedSlice::<u64>::new(whole.slice(4, 16).unwrap()).is_none());
        assert!(MappedSlice::<u64>::new(whole.slice(8, 12).unwrap()).is_none());
        // u32 view of the same data works at 4-byte alignment.
        let u32s = MappedSlice::<u32>::new(whole.slice(4, 8).unwrap()).unwrap();
        assert_eq!(u32s.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_copy_on_write() {
        if cfg!(target_endian = "big") {
            return;
        }
        let words: Vec<u64> = vec![7, 8, 9];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let path = tmp("scube_mmap_store.bin", &bytes);
        let file = Arc::new(MmapFile::open(&path).unwrap());
        let mapped = MappedSlice::<u64>::new(ByteRegion::whole(file)).unwrap();
        let mut store: Store<u64> = Store::Mapped(mapped);
        assert!(store.is_mapped());
        assert_eq!(&store[..], &[7, 8, 9]);
        assert_eq!(store.heap_capacity(), 0);
        // Equality is by contents, either backing.
        assert_eq!(store, Store::Owned(vec![7, 8, 9]));
        // First mutation copies to the heap.
        store.vec_mut().push(10);
        assert!(!store.is_mapped());
        assert_eq!(&store[..], &[7, 8, 9, 10]);
        let taken = store.take_vec();
        assert_eq!(taken, vec![7, 8, 9, 10]);
        assert!(store.as_slice().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
