//! Minimal, dependency-free CSV reading and writing.
//!
//! SCube's four inputs (`individuals`, `groups`, `membership`, `dates`) and
//! its report outputs are CSV files. The offline crate set has no `csv`
//! crate, so this module implements the subset of RFC 4180 the tool needs:
//!
//! * configurable single-byte delimiter (default `,`);
//! * double-quoted fields containing delimiters, quotes (`""`), and newlines;
//! * LF and CRLF record terminators;
//! * streaming record iteration from any [`BufRead`].
//!
//! Fields are returned as owned `String`s; dictionary encoding downstream
//! interns them immediately, so per-record allocations are reused via
//! [`Reader::read_record`]'s workhorse-buffer API (perf-book "reusing
//! collections" pattern).

use std::io::{BufRead, Write};

use crate::error::{Result, ScubeError};

/// Streaming CSV reader over any [`BufRead`].
#[derive(Debug)]
pub struct Reader<R> {
    input: R,
    delimiter: u8,
    /// Physical lines consumed so far.
    line: u64,
    /// First physical line of the most recently read record.
    record_start: u64,
    buf: String,
}

impl<R: BufRead> Reader<R> {
    /// Create a reader with the default `,` delimiter.
    pub fn new(input: R) -> Self {
        Self::with_delimiter(input, b',')
    }

    /// Create a reader with a custom single-byte delimiter.
    pub fn with_delimiter(input: R, delimiter: u8) -> Self {
        Reader { input, delimiter, line: 0, record_start: 0, buf: String::new() }
    }

    /// 1-based line number where the most recently read record **starts**.
    /// A record whose quoted fields span several physical lines is
    /// reported (here and in error messages) by the line it opened on —
    /// the line a user would go look at — not by whichever continuation
    /// line the reader happened to stop at.
    #[allow(clippy::misnamed_getters)] // `line` is the record's start line by contract
    pub fn line(&self) -> u64 {
        self.record_start
    }

    /// Read the next record into `fields` (cleared first).
    ///
    /// Returns `Ok(false)` at end of input. Blank lines are skipped.
    pub fn read_record(&mut self, fields: &mut Vec<String>) -> Result<bool> {
        fields.clear();
        loop {
            self.buf.clear();
            let n = self
                .input
                .read_line(&mut self.buf)
                .map_err(|e| ScubeError::Io { path: None, source: e })?;
            if n == 0 {
                return Ok(false);
            }
            self.line += 1;
            self.record_start = self.line;
            // Keep reading physical lines while inside an open quote.
            while field_quote_open(&self.buf, self.delimiter) {
                let n2 = self
                    .input
                    .read_line(&mut self.buf)
                    .map_err(|e| ScubeError::Io { path: None, source: e })?;
                if n2 == 0 {
                    return Err(ScubeError::Csv {
                        line: self.record_start,
                        msg: "unterminated quoted field".into(),
                    });
                }
                self.line += 1;
            }
            let trimmed = trim_terminator(&self.buf);
            if trimmed.is_empty() {
                continue; // skip blank lines
            }
            parse_record(trimmed, self.delimiter, self.record_start, fields)?;
            return Ok(true);
        }
    }

    /// Collect every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<Vec<String>>> {
        let mut out = Vec::new();
        let mut rec = Vec::new();
        while self.read_record(&mut rec)? {
            out.push(rec.clone());
        }
        Ok(out)
    }
}

/// Does this (partial) physical line end inside an open quoted field?
fn field_quote_open(s: &str, delimiter: u8) -> bool {
    let mut in_quotes = false;
    let mut at_field_start = true;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            if b == b'"' {
                if bytes.get(i + 1) == Some(&b'"') {
                    i += 1; // escaped quote
                } else {
                    in_quotes = false;
                }
            }
        } else if b == b'"' && at_field_start {
            in_quotes = true;
        } else if b == delimiter {
            at_field_start = true;
            i += 1;
            continue;
        }
        at_field_start = false;
        i += 1;
    }
    in_quotes
}

fn trim_terminator(s: &str) -> &str {
    let s = s.strip_suffix('\n').unwrap_or(s);
    s.strip_suffix('\r').unwrap_or(s)
}

fn parse_record(s: &str, delimiter: u8, line: u64, fields: &mut Vec<String>) -> Result<()> {
    let bytes = s.as_bytes();
    let mut field = String::new();
    let mut i = 0;
    loop {
        // Parse one field starting at i.
        field.clear();
        if bytes.get(i) == Some(&b'"') {
            // Quoted field.
            i += 1;
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(ScubeError::Csv {
                            line,
                            msg: "unterminated quoted field".into(),
                        })
                    }
                    Some(b'"') => {
                        if bytes.get(i + 1) == Some(&b'"') {
                            field.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    }
                    Some(_) => {
                        let start = i;
                        while i < bytes.len() && bytes[i] != b'"' {
                            i += 1;
                        }
                        field.push_str(&s[start..i]);
                    }
                }
            }
            match bytes.get(i) {
                None => {
                    fields.push(std::mem::take(&mut field));
                    return Ok(());
                }
                Some(&d) if d == delimiter => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                Some(_) => {
                    return Err(ScubeError::Csv {
                        line,
                        msg: "unexpected character after closing quote".into(),
                    })
                }
            }
        } else {
            // Unquoted field: read until delimiter or end.
            let start = i;
            while i < bytes.len() && bytes[i] != delimiter {
                i += 1;
            }
            field.push_str(&s[start..i]);
            fields.push(std::mem::take(&mut field));
            if i == bytes.len() {
                return Ok(());
            }
            i += 1; // skip delimiter
        }
        // A trailing delimiter means one more (empty) field.
        if i == bytes.len() {
            fields.push(String::new());
            return Ok(());
        }
    }
}

/// CSV writer with minimal quoting (only when needed).
#[derive(Debug)]
pub struct Writer<W> {
    output: W,
    delimiter: u8,
}

impl<W: Write> Writer<W> {
    /// Create a writer with the default `,` delimiter.
    pub fn new(output: W) -> Self {
        Self::with_delimiter(output, b',')
    }

    /// Create a writer with a custom single-byte delimiter.
    pub fn with_delimiter(output: W, delimiter: u8) -> Self {
        Writer { output, delimiter }
    }

    /// Write one record, quoting fields only when required.
    pub fn write_record<I, S>(&mut self, fields: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for f in fields {
            if !first {
                self.output.write_all(&[self.delimiter])?;
            }
            first = false;
            let f = f.as_ref();
            if needs_quoting(f, self.delimiter) {
                self.output.write_all(b"\"")?;
                self.output.write_all(f.replace('"', "\"\"").as_bytes())?;
                self.output.write_all(b"\"")?;
            } else {
                self.output.write_all(f.as_bytes())?;
            }
        }
        self.output.write_all(b"\n")?;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<()> {
        self.output.flush()?;
        Ok(())
    }

    /// Consume the writer and return the underlying output.
    pub fn into_inner(self) -> W {
        self.output
    }
}

fn needs_quoting(f: &str, delimiter: u8) -> bool {
    f.bytes().any(|b| b == delimiter || b == b'"' || b == b'\n' || b == b'\r')
}

/// Parse a whole CSV string into records (test/report helper).
pub fn parse_str(s: &str) -> Result<Vec<Vec<String>>> {
    Reader::new(s.as_bytes()).read_all()
}

/// Render records to a CSV string (test/report helper).
pub fn to_string<R, S>(records: R) -> String
where
    R: IntoIterator,
    R::Item: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut w = Writer::new(Vec::new());
    for rec in records {
        w.write_record(rec).expect("writing to Vec cannot fail");
    }
    String::from_utf8(w.into_inner()).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: &[&str]) -> Vec<String> {
        fields.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simple_records() {
        let got = parse_str("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(got, vec![rec(&["a", "b", "c"]), rec(&["1", "2", "3"])]);
    }

    #[test]
    fn crlf_terminators() {
        let got = parse_str("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(got, vec![rec(&["a", "b"]), rec(&["c", "d"])]);
    }

    #[test]
    fn quoted_fields_with_delimiters() {
        let got = parse_str("\"a,b\",c\n").unwrap();
        assert_eq!(got, vec![rec(&["a,b", "c"])]);
    }

    #[test]
    fn escaped_quotes() {
        let got = parse_str("\"he said \"\"hi\"\"\",x\n").unwrap();
        assert_eq!(got, vec![rec(&["he said \"hi\"", "x"])]);
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let got = parse_str("\"line1\nline2\",y\n").unwrap();
        assert_eq!(got, vec![rec(&["line1\nline2", "y"])]);
    }

    #[test]
    fn empty_fields_and_trailing_delimiter() {
        let got = parse_str(",a,\n").unwrap();
        assert_eq!(got, vec![rec(&["", "a", ""])]);
    }

    #[test]
    fn blank_lines_skipped() {
        let got = parse_str("a\n\n\nb\n").unwrap();
        assert_eq!(got, vec![rec(&["a"]), rec(&["b"])]);
    }

    #[test]
    fn missing_final_newline() {
        let got = parse_str("a,b").unwrap();
        assert_eq!(got, vec![rec(&["a", "b"])]);
    }

    #[test]
    fn missing_final_newline_edge_shapes() {
        // Quoted final field, escaped quote at the very end, trailing
        // delimiter, and a quoted field closing at EOF — none may lose the
        // record or mis-parse it.
        assert_eq!(parse_str("x,\"y\"").unwrap(), vec![rec(&["x", "y"])]);
        assert_eq!(parse_str("\"a\"\"b\"").unwrap(), vec![rec(&["a\"b"])]);
        assert_eq!(parse_str("a,").unwrap(), vec![rec(&["a", ""])]);
        // A multi-line quoted record truncated by EOF (no newline after
        // the continuation) still parses once the quote closes...
        assert_eq!(parse_str("\"l1\nl2\",z").unwrap(), vec![rec(&["l1\nl2", "z"])]);
        // ...and a final \r with no \n is treated as a bare terminator.
        assert_eq!(parse_str("a,b\r").unwrap(), vec![rec(&["a", "b"])]);
    }

    #[test]
    fn crlf_inside_quoted_fields_is_preserved() {
        // RFC 4180 allows CRLF inside quoted fields; only the *record*
        // terminator is stripped, the embedded one is data.
        let got = parse_str("\"line1\r\nline2\",y\r\n").unwrap();
        assert_eq!(got, vec![rec(&["line1\r\nline2", "y"])]);
        // And it round-trips through the writer (which must quote it).
        let encoded = to_string(got.iter().map(|r| r.iter().map(|s| s.as_str())));
        assert_eq!(parse_str(&encoded).unwrap(), vec![rec(&["line1\r\nline2", "y"])]);
        // A CRLF-terminated record whose *last* field is quoted loses only
        // the terminator.
        assert_eq!(parse_str("a,\"b\"\r\n").unwrap(), vec![rec(&["a", "b"])]);
    }

    #[test]
    fn multi_line_records_report_their_start_line() {
        // Record 2 spans physical lines 2-4; line() must point at 2 (the
        // line a user would open), not at the continuation the reader
        // stopped on.
        let mut r = Reader::new("first\n\"a\nb\nc\",x\nlast\n".as_bytes());
        let mut f = Vec::new();
        r.read_record(&mut f).unwrap();
        assert_eq!(r.line(), 1);
        r.read_record(&mut f).unwrap();
        assert_eq!(f, rec(&["a\nb\nc", "x"]));
        assert_eq!(r.line(), 2, "multi-line record starts at line 2");
        r.read_record(&mut f).unwrap();
        assert_eq!(f, rec(&["last"]));
        assert_eq!(r.line(), 5);
    }

    #[test]
    fn errors_in_multi_line_records_cite_the_start_line() {
        // The malformed record opens at line 2 and spans to line 3, where
        // garbage follows the closing quote.
        let mut r = Reader::new("ok\n\"a\nb\"x,y\n".as_bytes());
        let mut f = Vec::new();
        r.read_record(&mut f).unwrap();
        let err = r.read_record(&mut f).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        // An unterminated quote that runs to EOF cites where it opened.
        let mut r = Reader::new("ok\nalso ok\n\"never closed\nstill open".as_bytes());
        let mut f = Vec::new();
        r.read_record(&mut f).unwrap();
        r.read_record(&mut f).unwrap();
        let err = r.read_record(&mut f).unwrap_err().to_string();
        assert!(err.contains("unterminated"), "{err}");
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = parse_str("\"abc\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn garbage_after_quote_is_error() {
        let err = parse_str("\"abc\"x,y\n").unwrap_err();
        assert!(err.to_string().contains("after closing quote"));
    }

    #[test]
    fn custom_delimiter() {
        let mut r = Reader::with_delimiter("a;b;c\n".as_bytes(), b';');
        let mut f = Vec::new();
        assert!(r.read_record(&mut f).unwrap());
        assert_eq!(f, rec(&["a", "b", "c"]));
    }

    #[test]
    fn writer_quotes_when_needed() {
        let s = to_string(vec![vec!["plain", "with,comma", "with\"quote", "with\nnewline"]]);
        assert_eq!(s, "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
    }

    #[test]
    fn roundtrip() {
        let original = vec![
            rec(&["id", "name", "notes"]),
            rec(&["1", "a,b", "say \"hi\""]),
            rec(&["2", "", "multi\nline"]),
        ];
        let encoded = to_string(original.iter().map(|r| r.iter().map(|s| s.as_str())));
        let decoded = parse_str(&encoded).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn line_numbers_advance() {
        let mut r = Reader::new("a\nb\nc\n".as_bytes());
        let mut f = Vec::new();
        r.read_record(&mut f).unwrap();
        assert_eq!(r.line(), 1);
        r.read_record(&mut f).unwrap();
        assert_eq!(r.line(), 2);
    }

    #[test]
    fn multivalued_cell_passthrough() {
        // SCube encodes multi-valued attributes as ';'-separated values
        // inside one field; the CSV layer must not interfere.
        let got = parse_str("M,north,\"electricity;transports\"\n").unwrap();
        assert_eq!(got, vec![rec(&["M", "north", "electricity;transports"])]);
    }
}
