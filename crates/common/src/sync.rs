//! A minimal in-tree mutual-exclusion lock.
//!
//! The concurrent serving layer shards its cell cache N ways and puts each
//! shard behind its own lock. The std `Mutex` would work, but it carries
//! lock poisoning — a panicking holder taints the shard and turns every
//! later query on it into an error — and its guard type is awkward to store
//! in the slab-style structures the cache uses. [`SpinLock`] is the subset
//! we actually need: `lock`/`try_lock` with a RAII guard, **no poisoning**
//! (a panicking holder simply releases on unwind; the protected value is
//! plain data that stays consistent between mutations), and adaptive
//! spinning that yields to the scheduler quickly, so oversubscribed hosts
//! (more workers than cores) degrade gracefully instead of burning a
//! timeslice spinning against a de-scheduled holder.
//!
//! Critical sections in the serving layer are O(1) cache probes and
//! insertions — never cell recomputation — which is the regime where a
//! spinning lock beats a parking one.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// Spins this many times with a CPU hint before yielding the timeslice.
const SPINS_BEFORE_YIELD: u32 = 64;

/// A small mutual-exclusion lock over `T` (see the module docs).
#[derive(Debug, Default)]
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock hands out at most one live guard at a time (the CAS on
// `locked` gates access), so sharing the lock across threads only ever
// moves `T` accesses between threads — `T: Send` is exactly the bound that
// makes that sound.
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        SpinLock { locked: AtomicBool::new(false), value: UnsafeCell::new(value) }
    }

    /// Acquire the lock, spinning (then yielding) until it is free.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            if let Some(guard) = self.try_lock() {
                return guard;
            }
            // Wait for the flag to look free before retrying the CAS, so
            // waiters read a shared cache line instead of fighting over it.
            while self.locked.load(Ordering::Relaxed) {
                if spins < SPINS_BEFORE_YIELD {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            Some(SpinGuard { lock: self, _not_auto_sync: PhantomData })
        } else {
            None
        }
    }

    /// Direct access through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Unwrap the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// RAII guard of a [`SpinLock`]; releases on drop (including unwinds — the
/// lock never poisons).
#[derive(Debug)]
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
    /// Suppresses the auto `Send`/`Sync` impls: `&SpinLock<T>` is `Sync`
    /// for any `T: Send`, which would make `&SpinGuard<Cell<_>>` shareable
    /// across threads and hand out racing `&Cell` references from safe
    /// code. The explicit impl below restores `Sync` under the correct
    /// bound (`T: Sync`, as `std::sync::MutexGuard` does); the guard stays
    /// `!Send` — it borrows the lock, so there is no reason to move it.
    _not_auto_sync: PhantomData<*const ()>,
}

// SAFETY: sharing `&SpinGuard` only exposes `&T` (via `Deref`), which is
// exactly what `T: Sync` permits. `DerefMut` needs `&mut SpinGuard` and is
// therefore still confined to one thread at a time.
unsafe impl<T: Sync> Sync for SpinGuard<'_, T> {}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: holding the guard means the CAS in `try_lock` succeeded
        // and no other guard exists until drop.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `Deref` — the guard is the unique accessor.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn guards_are_exclusive() {
        let lock = SpinLock::new(0u32);
        let g = lock.lock();
        assert!(lock.try_lock().is_none(), "second guard while one is live");
        drop(g);
        assert!(lock.try_lock().is_some(), "free after the guard drops");
    }

    #[test]
    fn mutation_through_guard() {
        let mut lock = SpinLock::new(Vec::new());
        lock.lock().push(1);
        lock.lock().push(2);
        assert_eq!(*lock.get_mut(), vec![1, 2]);
        assert_eq!(lock.into_inner(), vec![1, 2]);
    }

    #[test]
    fn counter_under_contention_loses_no_updates() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let lock = SpinLock::new(0u64);
        let plain = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        *lock.lock() += 1;
                        plain.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(lock.into_inner(), THREADS as u64 * PER_THREAD);
        assert_eq!(plain.into_inner(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn released_on_panic_unwind() {
        let lock = SpinLock::new(0u32);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = lock.lock();
            panic!("holder panics");
        }));
        assert!(r.is_err());
        // No poisoning: the lock is usable again immediately.
        *lock.lock() += 1;
        assert_eq!(lock.into_inner(), 1);
    }
}
