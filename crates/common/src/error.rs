//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, ScubeError>;

/// Errors produced anywhere in the SCube pipeline.
///
/// The pipeline is file-oriented (CSV in, CSV out), so I/O and parse errors
/// dominate; the remaining variants signal misuse of the analytical API
/// (unknown attributes, inconsistent histograms, …).
#[derive(Debug)]
pub enum ScubeError {
    /// Underlying I/O failure, with the path (if known) for context.
    Io {
        /// Path involved in the failing operation, when known.
        path: Option<String>,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number where the problem was detected.
        line: u64,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// Schema-level problem: unknown attribute, duplicate name, role misuse.
    Schema(String),
    /// Invalid parameter passed to an algorithm (e.g. `min_support = 0`).
    InvalidParameter(String),
    /// Inconsistent data detected at runtime (e.g. minority > total in a unit).
    Inconsistent(String),
}

impl fmt::Display for ScubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScubeError::Io { path: Some(p), source } => write!(f, "I/O error on {p}: {source}"),
            ScubeError::Io { path: None, source } => write!(f, "I/O error: {source}"),
            ScubeError::Csv { line, msg } => write!(f, "CSV error at line {line}: {msg}"),
            ScubeError::Schema(msg) => write!(f, "schema error: {msg}"),
            ScubeError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ScubeError::Inconsistent(msg) => write!(f, "inconsistent data: {msg}"),
        }
    }
}

impl std::error::Error for ScubeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScubeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ScubeError {
    fn from(source: std::io::Error) -> Self {
        ScubeError::Io { path: None, source }
    }
}

impl ScubeError {
    /// Attach a path to an I/O error for better messages.
    pub fn io_at(path: impl Into<String>, source: std::io::Error) -> Self {
        ScubeError::Io { path: Some(path.into()), source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        let e = ScubeError::io_at("foo.csv", std::io::Error::other("boom"));
        assert!(e.to_string().contains("foo.csv"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_csv_line() {
        let e = ScubeError::Csv { line: 7, msg: "unterminated quote".into() };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("unterminated quote"));
    }

    #[test]
    fn from_io_error() {
        let e: ScubeError = std::io::Error::other("x").into();
        assert!(matches!(e, ScubeError::Io { path: None, .. }));
    }

    #[test]
    fn source_chains_to_io() {
        use std::error::Error;
        let e = ScubeError::io_at("p", std::io::Error::other("y"));
        assert!(e.source().is_some());
        let e2 = ScubeError::Schema("s".into());
        assert!(e2.source().is_none());
    }
}
