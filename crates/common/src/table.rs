//! Aligned plain-text tables.
//!
//! The SCube demo communicates through pivot tables and grids (Fig. 1,
//! Fig. 5); our Visualizer and the experiment binaries print equivalent
//! reports to the terminal. This module renders rows of strings as an
//! aligned monospace table, with numeric columns right-aligned.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the header row.
    pub fn header<I, S>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Set per-column alignment (defaults to left for missing columns).
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        self.aligns = aligns;
        self
    }

    /// Append a data row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with two-space column separators and a rule under the header.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.header.is_empty() {
            self.render_row(&mut out, &self.header, &widths);
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            self.render_row(&mut out, row, &widths);
        }
        out
    }

    fn render_row(&self, out: &mut String, row: &[String], widths: &[usize]) {
        for (i, width) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            let pad = width.saturating_sub(cell.chars().count());
            let align = self.aligns.get(i).copied().unwrap_or(Align::Left);
            match align {
                Align::Left => {
                    out.push_str(cell);
                    if i + 1 < widths.len() {
                        let _ = write!(out, "{:pad$}", "", pad = pad);
                    }
                }
                Align::Right => {
                    let _ = write!(out, "{:pad$}", "", pad = pad);
                    out.push_str(cell);
                }
            }
        }
        // Trim trailing spaces from left-aligned last columns.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
}

/// Format an optional index value the way the paper's Fig. 1 does:
/// two decimals, or `-` for undefined/empty cells.
pub fn fmt_index(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.2}"),
        _ => "-".to_string(),
    }
}

/// Format a float with `prec` decimals, or `-` when not finite.
pub fn fmt_f64(v: f64, prec: usize) -> String {
    if v.is_finite() {
        format!("{v:.prec$}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t =
            TextTable::new().header(["name", "value"]).aligns(vec![Align::Left, Align::Right]);
        t.row(["alpha", "1.00"]);
        t.row(["b", "10.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("1.00"));
        assert!(lines[3].ends_with("10.50"));
        // Right-aligned column: values end at the same character position.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new();
        assert!(t.is_empty());
        assert_eq!(t.render(), "");
    }

    #[test]
    fn ragged_rows_tolerated() {
        let mut t = TextTable::new().header(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn fmt_index_matches_fig1_conventions() {
        assert_eq!(fmt_index(Some(0.78)), "0.78");
        assert_eq!(fmt_index(Some(0.5)), "0.50");
        assert_eq!(fmt_index(None), "-");
        assert_eq!(fmt_index(Some(f64::NAN)), "-");
    }

    #[test]
    fn fmt_f64_precision() {
        assert_eq!(fmt_f64(1.23456, 3), "1.235");
        assert_eq!(fmt_f64(f64::INFINITY, 2), "-");
    }

    #[test]
    fn row_count() {
        let mut t = TextTable::new();
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
