#![warn(missing_docs)]
//! Shared utilities for the `scube` workspace.
//!
//! This crate collects the small pieces of infrastructure that every other
//! crate in the workspace needs and that the original Java implementation of
//! SCube obtained from third-party libraries:
//!
//! * [`hash`] — a fast, non-cryptographic hasher (FxHash) plus `HashMap`/
//!   `HashSet` aliases, used for the hot itemset and pair-counting maps.
//! * [`csv`] — a small, dependency-free CSV reader/writer supporting quoting,
//!   CRLF, and embedded newlines (SCube's inputs and outputs are CSV files).
//! * [`error`] — the shared [`error::ScubeError`] type and `Result` alias.
//! * [`table`] — plain-text aligned table rendering used by the Visualizer
//!   and by the experiment binaries to print paper-shaped reports.
//! * [`sync`] — a minimal, poison-free [`sync::SpinLock`] guarding the
//!   sharded caches of the concurrent serving layer.
//! * [`mmap`] — read-only memory-mapped files and the owned-or-mapped
//!   [`mmap::Store`] backing zero-copy snapshot serving.

pub mod csv;
pub mod error;
pub mod hash;
pub mod mmap;
pub mod sync;
pub mod table;

pub use error::{Result, ScubeError};
pub use hash::{FxHashMap, FxHashSet};
pub use sync::SpinLock;
