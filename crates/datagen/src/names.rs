//! Name pools for the synthetic registries: the 20 Italian company sectors
//! the paper's Fig. 5 radial plot spans, the 20 Italian regions with their
//! macro-areas, and the 15 Estonian counties.

/// Italian company sectors (ATECO-like top-level sections, 20 of them —
/// Fig. 5 bottom plots "each of the 20 Italian company sectors").
/// The second field is the planted baseline female propensity used by the
/// generator (loosely shaped on public board-composition statistics: low in
/// construction/mining, high in education/health/services).
pub const SECTORS: [(&str, f64); 20] = [
    ("agriculture", 0.18),
    ("mining", 0.07),
    ("manufacturing", 0.17),
    ("electricity", 0.12),
    ("water_waste", 0.13),
    ("construction", 0.09),
    ("trade", 0.26),
    ("transports", 0.12),
    ("accommodation", 0.33),
    ("ict", 0.22),
    ("finance", 0.27),
    ("real_estate", 0.30),
    ("professional", 0.31),
    ("administrative", 0.35),
    ("education", 0.52),
    ("health", 0.48),
    ("arts", 0.36),
    ("other_services", 0.44),
    ("domestic", 0.58),
    ("extraterritorial", 0.25),
];

/// Relative frequency of each sector among companies (unnormalized).
pub const SECTOR_WEIGHTS: [f64; 20] = [
    5.0, 0.3, 10.0, 0.8, 0.7, 12.0, 24.0, 4.0, 6.0, 4.5, 3.0, 7.0, 8.0, 3.5, 1.0, 2.0, 1.5, 4.0,
    0.4, 0.1,
];

/// Italian regions with macro-area and relative company frequency.
pub const REGIONS: [(&str, &str, f64); 20] = [
    ("lombardia", "north", 16.0),
    ("lazio", "center", 10.0),
    ("campania", "south", 9.0),
    ("veneto", "north", 8.0),
    ("emilia_romagna", "north", 8.0),
    ("piemonte", "north", 7.0),
    ("sicilia", "south", 7.0),
    ("toscana", "center", 7.0),
    ("puglia", "south", 6.0),
    ("liguria", "north", 3.0),
    ("marche", "center", 3.0),
    ("calabria", "south", 3.0),
    ("sardegna", "south", 3.0),
    ("abruzzo", "south", 2.5),
    ("friuli", "north", 2.2),
    ("trentino", "north", 2.0),
    ("umbria", "center", 1.6),
    ("basilicata", "south", 1.0),
    ("molise", "south", 0.6),
    ("valle_daosta", "north", 0.4),
];

/// Estonian counties with macro-area and relative company frequency
/// (Harju/Tallinn dominates).
pub const COUNTIES: [(&str, &str, f64); 15] = [
    ("harju", "north", 45.0),
    ("tartu", "south", 10.0),
    ("ida_viru", "east", 7.0),
    ("parnu", "west", 6.0),
    ("laane_viru", "north", 4.0),
    ("viljandi", "south", 3.5),
    ("rapla", "north", 3.0),
    ("voru", "south", 3.0),
    ("saare", "west", 3.0),
    ("jogeva", "south", 2.5),
    ("jarva", "north", 2.5),
    ("valga", "south", 2.5),
    ("polva", "south", 2.0),
    ("laane", "west", 2.0),
    ("hiiu", "west", 1.0),
];

/// Age bands used for directors (the paper's Fig. 3 uses bands like 15-38).
pub const AGE_BANDS: [&str; 5] = ["15-38", "39-46", "47-54", "55-65", "65+"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_have_expected_sizes() {
        assert_eq!(SECTORS.len(), 20);
        assert_eq!(SECTOR_WEIGHTS.len(), 20);
        assert_eq!(REGIONS.len(), 20);
        assert_eq!(COUNTIES.len(), 15);
    }

    #[test]
    fn propensities_are_probabilities() {
        for (name, p) in SECTORS {
            assert!((0.0..=1.0).contains(&p), "{name}: {p}");
        }
    }

    #[test]
    fn macro_areas_cover() {
        for (_, area, _) in REGIONS {
            assert!(["north", "center", "south"].contains(&area));
        }
    }
}
