#![warn(missing_docs)]
//! Synthetic board-of-directors registries for the SCube case studies.
//!
//! The paper's evaluation uses two proprietary datasets: a 2012 snapshot of
//! the Italian Business Register (3.6M directors, 2.15M companies) and a
//! 20-year Estonian registry (440K directors, 340K companies). Neither is
//! public, so this crate generates synthetic registries that reproduce the
//! aggregate *shapes* those experiments depend on (see DESIGN.md §3):
//!
//! * 20 Italian sectors / 20 regions with realistic frequency skew (15
//!   Estonian counties for the Estonian preset);
//! * board sizes and director multi-seat ("interlock") distributions with
//!   the right means and heavy tails, yielding the connected-company
//!   communities the graph scenarios cluster;
//! * **planted gender segregation**: each sector has a baseline female
//!   propensity (education high, construction low, …), amplified or muted
//!   by the `sector_bias` knob, plus a north/south residence effect — so
//!   experiments can assert *who is segregated where* against ground truth;
//! * optional validity intervals over a configurable year range with a
//!   female-share drift (the Estonian temporal analysis).
//!
//! Everything is deterministic under a fixed seed.

pub mod names;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use scube::inputs::{Dataset, GroupsSpec, IndividualsSpec, MembershipSpec};
use scube_common::Result;
use scube_data::Relation;

/// Temporal generation parameters (Estonian-style registries).
#[derive(Debug, Clone, Copy)]
pub struct TemporalConfig {
    /// First year of the registry.
    pub start_year: i64,
    /// Last year of the registry.
    pub end_year: i64,
    /// Added female propensity from `start_year` to `end_year` (a linear
    /// drift; positive = boards feminize over time).
    pub female_drift: f64,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BoardsConfig {
    /// Number of companies to generate.
    pub n_companies: usize,
    /// Mean board size (companies with 1..=15 seats, geometric-ish).
    pub mean_board_size: f64,
    /// Target ratio directors/companies (Italy 2012: 3.6M/2.15M ≈ 1.67).
    pub directors_per_company: f64,
    /// Strength of the planted sector gender bias in `[0, 1]`:
    /// 0 = every sector at the national share (no segregation),
    /// 1 = the full per-sector propensities of [`names::SECTORS`].
    pub sector_bias: f64,
    /// Extra south-vs-north female propensity gap (planted regional
    /// segregation; subtracted in the south, added in the north).
    pub regional_gap: f64,
    /// Share of reused directors drawn from the same region (creates
    /// regionally clustered interlocks).
    pub regional_affinity: f64,
    /// Share of reused directors drawn from the same sector (directors
    /// tend to stay within their industry; keeps the planted sector bias
    /// visible through interlocks).
    pub sector_affinity: f64,
    /// Use Estonian counties instead of Italian regions.
    pub estonian_geography: bool,
    /// Validity intervals (None = untimed snapshot).
    pub temporal: Option<TemporalConfig>,
    /// RNG seed.
    pub seed: u64,
}

impl BoardsConfig {
    /// The Italian 2012-snapshot preset, scaled to `n_companies`
    /// (full scale would be 2 150 000).
    pub fn italy(n_companies: usize) -> Self {
        BoardsConfig {
            n_companies,
            mean_board_size: 2.8,
            directors_per_company: 1.67,
            sector_bias: 1.0,
            regional_gap: 0.05,
            regional_affinity: 0.7,
            sector_affinity: 0.65,
            estonian_geography: false,
            temporal: None,
            seed: 0x17A1,
        }
    }

    /// The Estonian 20-year preset, scaled to `n_companies`
    /// (full scale would be 340 000; directors/companies 440/340 ≈ 1.29).
    pub fn estonia(n_companies: usize) -> Self {
        BoardsConfig {
            n_companies,
            mean_board_size: 2.2,
            directors_per_company: 1.29,
            sector_bias: 1.0,
            regional_gap: 0.03,
            regional_affinity: 0.6,
            sector_affinity: 0.6,
            estonian_geography: true,
            temporal: Some(TemporalConfig { start_year: 1995, end_year: 2014, female_drift: 0.08 }),
            seed: 0xE570,
        }
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the planted sector bias.
    pub fn sector_bias(mut self, bias: f64) -> Self {
        self.sector_bias = bias;
        self
    }
}

/// A generated registry: the three SCube input relations plus their specs.
#[derive(Debug, Clone)]
pub struct SyntheticBoards {
    /// `individuals`: id, gender, age, birthplace, residence.
    pub individuals: Relation,
    /// `groups`: id, sector, region, area.
    pub groups: Relation,
    /// `membership`: director, company (+ from, to when temporal).
    pub membership: Relation,
    /// The configuration that produced the registry.
    pub config: BoardsConfig,
}

impl SyntheticBoards {
    /// Column roles of the `individuals` relation.
    pub fn individuals_spec(&self) -> IndividualsSpec {
        IndividualsSpec::new("id").sa("gender").sa("age").sa("birthplace").ca("residence")
    }

    /// Column roles of the `groups` relation.
    pub fn groups_spec(&self) -> GroupsSpec {
        GroupsSpec::new("id").ca("sector").ca("region").ca("area")
    }

    /// Column roles of the `membership` relation.
    pub fn membership_spec(&self) -> MembershipSpec {
        let spec = MembershipSpec::new("director", "company");
        if self.config.temporal.is_some() {
            spec.with_interval("from", "to")
        } else {
            spec
        }
    }

    /// Assemble a validated [`Dataset`] with the given snapshot dates.
    pub fn to_dataset(&self, dates: Vec<i64>) -> Result<Dataset> {
        Dataset::new(
            self.individuals.clone(),
            self.individuals_spec(),
            self.groups.clone(),
            self.groups_spec(),
            &self.membership,
            &self.membership_spec(),
            dates,
        )
    }

    /// Evenly spaced snapshot years across the temporal range (`n ≥ 2`).
    pub fn snapshot_years(&self, n: usize) -> Vec<i64> {
        match self.config.temporal {
            Some(t) if n >= 2 => {
                let span = t.end_year - t.start_year;
                (0..n).map(|i| t.start_year + span * i as i64 / (n as i64 - 1)).collect()
            }
            Some(t) => vec![t.end_year],
            None => Vec::new(),
        }
    }
}

struct DirectorRecord {
    gender: &'static str,
    age: &'static str,
    birthplace: String,
    residence: String,
    region_idx: usize,
    /// Year of the director's first appearance (temporal registries only):
    /// later memberships of the same director cannot start before it.
    first_from: i64,
}

/// Weighted index sampling.
fn pick_weighted(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Geometric-ish size in `1..=cap` with the given mean.
fn board_size(rng: &mut SmallRng, mean: f64, cap: usize) -> usize {
    let p = 1.0 / mean;
    let mut size = 1;
    while size < cap && rng.random::<f64>() > p {
        size += 1;
    }
    size
}

/// Generate a synthetic registry.
pub fn generate(config: BoardsConfig) -> SyntheticBoards {
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let geography: Vec<(&str, &str, f64)> =
        if config.estonian_geography { names::COUNTIES.to_vec() } else { names::REGIONS.to_vec() };
    let region_weights: Vec<f64> = geography.iter().map(|&(_, _, w)| w).collect();
    let national_female: f64 = {
        // Weighted national female share implied by the sector propensities.
        let wsum: f64 = names::SECTOR_WEIGHTS.iter().sum();
        names::SECTORS
            .iter()
            .zip(names::SECTOR_WEIGHTS.iter())
            .map(|(&(_, p), &w)| p * w)
            .sum::<f64>()
            / wsum
    };

    // Companies.
    let mut groups = Relation::new(["id", "sector", "region", "area"].map(str::to_string).to_vec())
        .expect("static columns");
    let mut company_sector = Vec::with_capacity(config.n_companies);
    let mut company_region = Vec::with_capacity(config.n_companies);
    for c in 0..config.n_companies {
        let s = pick_weighted(&mut rng, &names::SECTOR_WEIGHTS);
        let r = pick_weighted(&mut rng, &region_weights);
        company_sector.push(s);
        company_region.push(r);
        groups
            .push_row(vec![
                format!("c{c}"),
                names::SECTORS[s].0.to_string(),
                geography[r].0.to_string(),
                geography[r].1.to_string(),
            ])
            .expect("arity matches");
    }

    // Directors and memberships.
    let mut directors: Vec<DirectorRecord> = Vec::new();
    let mut by_region: Vec<Vec<u32>> = vec![Vec::new(); geography.len()];
    let mut by_sector: Vec<Vec<u32>> = vec![Vec::new(); names::SECTORS.len()];
    type MembershipRecord = (u32, u32, Option<(i64, i64)>);
    let mut memberships: Vec<MembershipRecord> = Vec::new();
    let p_new = (config.directors_per_company / config.mean_board_size).clamp(0.05, 1.0);

    for c in 0..config.n_companies {
        let sector = company_sector[c];
        let region = company_region[c];
        let size = board_size(&mut rng, config.mean_board_size, 15);
        for _ in 0..size {
            let reuse_pool = !directors.is_empty() && rng.random::<f64>() > p_new;
            // For reused directors the membership cannot start before the
            // director's first appearance (career timelines move forward).
            let reused: Option<u32> = if reuse_pool {
                // Prefer a director from the company's own sector (industry
                // careers), then from its region, then anyone.
                if rng.random::<f64>() < config.sector_affinity && !by_sector[sector].is_empty() {
                    let pool = &by_sector[sector];
                    Some(pool[rng.random_range(0..pool.len())])
                } else if rng.random::<f64>() < config.regional_affinity
                    && !by_region[region].is_empty()
                {
                    let pool = &by_region[region];
                    Some(pool[rng.random_range(0..pool.len())])
                } else {
                    Some(rng.random_range(0..directors.len() as u32))
                }
            } else {
                None
            };
            let interval = config.temporal.map(|t| {
                let lo = reused
                    .map(|d| directors[d as usize].first_from)
                    .unwrap_or(t.start_year)
                    .max(t.start_year);
                let span = (t.end_year - lo).max(0);
                let from = lo + rng.random_range(0..=span);
                let duration = 1 + board_size(&mut rng, 5.0, 20) as i64;
                (from, (from + duration).min(t.end_year))
            });

            let director = if let Some(idx) = reused {
                idx
            } else {
                // Fresh director with sector/region-conditioned attributes.
                let base = names::SECTORS[sector].1;
                let mut p_female = national_female + config.sector_bias * (base - national_female);
                match geography[region].1 {
                    "south" | "east" => p_female -= config.regional_gap,
                    "north" => p_female += config.regional_gap,
                    _ => {}
                }
                if let (Some(t), Some((from, _))) = (config.temporal, interval) {
                    let span = (t.end_year - t.start_year).max(1) as f64;
                    p_female += t.female_drift * (from - t.start_year) as f64 / span;
                }
                let female = rng.random::<f64>() < p_female.clamp(0.01, 0.99);
                // Women on boards skew younger in the planted model.
                let age_weights: [f64; 5] =
                    if female { [2.0, 3.0, 2.5, 1.5, 0.5] } else { [1.0, 2.0, 3.0, 2.5, 1.5] };
                let age = names::AGE_BANDS[pick_weighted(&mut rng, &age_weights)];
                // Birthplace: usually the residence macro-area, sometimes
                // elsewhere, occasionally foreign.
                let birth_roll = rng.random::<f64>();
                let birthplace = if birth_roll < 0.75 {
                    geography[region].1.to_string()
                } else if birth_roll < 0.95 {
                    geography[pick_weighted(&mut rng, &region_weights)].1.to_string()
                } else {
                    "foreign".to_string()
                };
                // Residence: usually the company's region.
                let res_idx = if rng.random::<f64>() < 0.9 {
                    region
                } else {
                    pick_weighted(&mut rng, &region_weights)
                };
                let idx = directors.len() as u32;
                directors.push(DirectorRecord {
                    gender: if female { "F" } else { "M" },
                    age,
                    birthplace,
                    residence: geography[res_idx].0.to_string(),
                    region_idx: res_idx,
                    first_from: interval.map(|(from, _)| from).unwrap_or(0),
                });
                by_region[res_idx].push(idx);
                by_sector[sector].push(idx);
                idx
            };
            memberships.push((director, c as u32, interval));
        }
    }

    let mut individuals = Relation::new(
        ["id", "gender", "age", "birthplace", "residence"].map(str::to_string).to_vec(),
    )
    .expect("static columns");
    for (i, d) in directors.iter().enumerate() {
        debug_assert!(d.region_idx < geography.len());
        individuals
            .push_row(vec![
                format!("d{i}"),
                d.gender.to_string(),
                d.age.to_string(),
                d.birthplace.clone(),
                d.residence.clone(),
            ])
            .expect("arity matches");
    }

    let membership_cols: Vec<String> = if config.temporal.is_some() {
        ["director", "company", "from", "to"].map(str::to_string).to_vec()
    } else {
        ["director", "company"].map(str::to_string).to_vec()
    };
    let mut membership = Relation::new(membership_cols).expect("static columns");
    for (d, c, interval) in &memberships {
        let mut row = vec![format!("d{d}"), format!("c{c}")];
        if let Some((from, to)) = interval {
            row.push(from.to_string());
            row.push(to.to_string());
        }
        membership.push_row(row).expect("arity matches");
    }

    SyntheticBoards { individuals, groups, membership, config }
}

/// Shortcut: the Italian preset at the given company count.
pub fn italy(n_companies: usize) -> SyntheticBoards {
    generate(BoardsConfig::italy(n_companies))
}

/// Shortcut: the Estonian preset at the given company count.
pub fn estonia(n_companies: usize) -> SyntheticBoards {
    generate(BoardsConfig::estonia(n_companies))
}

// ---------------------------------------------------------------------------
// Streaming final-table emission (the million-row scale axis)
// ---------------------------------------------------------------------------

/// Column header of the CSV emitted by [`stream_final_table`]: one row per
/// board seat, already joined into the paper's `finalTable` shape (director
/// SAs + company CAs + `unitID` = the company).
pub const FINAL_TABLE_COLUMNS: [&str; 8] =
    ["gender", "age", "birthplace", "residence", "sector", "region", "area", "unitID"];

/// Aggregate counts from a [`stream_final_table`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Companies generated (each is one organizational unit).
    pub n_companies: usize,
    /// Distinct directors behind the emitted seats.
    pub n_directors: usize,
    /// Final-table rows written (board seats).
    pub n_rows: usize,
}

/// The [`scube_data::FinalTableSpec`] matching [`FINAL_TABLE_COLUMNS`]: director
/// attributes as SAs, company attributes (plus residence) as CAs.
pub fn final_table_spec() -> scube_data::FinalTableSpec {
    scube_data::FinalTableSpec::new("unitID")
        .sa("gender")
        .sa("age")
        .sa("birthplace")
        .ca("residence")
        .ca("sector")
        .ca("region")
        .ca("area")
}

/// A director retained for interlock reuse, packed to indices so the pool
/// for millions of companies stays a few bytes per director.
struct PooledDirector {
    female: bool,
    age_idx: u8,
    /// Region whose macro-area is the birthplace, or [`BIRTH_FOREIGN`].
    birth: u8,
    /// Residence region index.
    region_idx: u8,
}

const BIRTH_FOREIGN: u8 = u8::MAX;

/// Generate an untimed registry and stream it straight to `out` as a
/// final-table CSV ([`FINAL_TABLE_COLUMNS`] header, one row per board
/// seat). Rows are written as they are generated — resident state is the
/// compact director pool (O(directors), a few bytes each), never the
/// table itself — so millions of companies fit in a small, flat memory
/// budget. The planted skew matches [`generate`]: weighted sectors and
/// regions, sector/regional gender propensities, and sector/region-affine
/// director reuse. Deterministic under `config.seed`.
///
/// Temporal configurations are rejected: the final table is an untimed
/// snapshot (`from`/`to` columns have no place in it).
pub fn stream_final_table(
    config: BoardsConfig,
    out: &mut dyn std::io::Write,
) -> Result<StreamStats> {
    use scube_common::ScubeError;
    if config.temporal.is_some() {
        return Err(ScubeError::InvalidParameter(
            "stream_final_table generates untimed snapshots; temporal must be None".into(),
        ));
    }
    let io_err = |source: std::io::Error| ScubeError::Io { path: None, source };

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let geography: Vec<(&str, &str, f64)> =
        if config.estonian_geography { names::COUNTIES.to_vec() } else { names::REGIONS.to_vec() };
    assert!(geography.len() < BIRTH_FOREIGN as usize, "region index fits u8");
    let region_weights: Vec<f64> = geography.iter().map(|&(_, _, w)| w).collect();
    let national_female: f64 = {
        let wsum: f64 = names::SECTOR_WEIGHTS.iter().sum();
        names::SECTORS
            .iter()
            .zip(names::SECTOR_WEIGHTS.iter())
            .map(|(&(_, p), &w)| p * w)
            .sum::<f64>()
            / wsum
    };

    let mut directors: Vec<PooledDirector> = Vec::new();
    let mut by_region: Vec<Vec<u32>> = vec![Vec::new(); geography.len()];
    let mut by_sector: Vec<Vec<u32>> = vec![Vec::new(); names::SECTORS.len()];
    let p_new = (config.directors_per_company / config.mean_board_size).clamp(0.05, 1.0);
    let mut n_rows = 0usize;

    writeln!(out, "{}", FINAL_TABLE_COLUMNS.join(",")).map_err(io_err)?;
    for c in 0..config.n_companies {
        let sector = pick_weighted(&mut rng, &names::SECTOR_WEIGHTS);
        let region = pick_weighted(&mut rng, &region_weights);
        let size = board_size(&mut rng, config.mean_board_size, 15);
        for _ in 0..size {
            let reuse_pool = !directors.is_empty() && rng.random::<f64>() > p_new;
            let director = if reuse_pool {
                // Prefer a director from the company's own sector, then from
                // its region, then anyone (same affinity cascade as
                // `generate`).
                if rng.random::<f64>() < config.sector_affinity && !by_sector[sector].is_empty() {
                    let pool = &by_sector[sector];
                    pool[rng.random_range(0..pool.len())] as usize
                } else if rng.random::<f64>() < config.regional_affinity
                    && !by_region[region].is_empty()
                {
                    let pool = &by_region[region];
                    pool[rng.random_range(0..pool.len())] as usize
                } else {
                    rng.random_range(0..directors.len())
                }
            } else {
                // Fresh director with sector/region-conditioned attributes.
                let base = names::SECTORS[sector].1;
                let mut p_female = national_female + config.sector_bias * (base - national_female);
                match geography[region].1 {
                    "south" | "east" => p_female -= config.regional_gap,
                    "north" => p_female += config.regional_gap,
                    _ => {}
                }
                let female = rng.random::<f64>() < p_female.clamp(0.01, 0.99);
                let age_weights: [f64; 5] =
                    if female { [2.0, 3.0, 2.5, 1.5, 0.5] } else { [1.0, 2.0, 3.0, 2.5, 1.5] };
                let age_idx = pick_weighted(&mut rng, &age_weights) as u8;
                let birth_roll = rng.random::<f64>();
                let birth = if birth_roll < 0.75 {
                    region as u8
                } else if birth_roll < 0.95 {
                    pick_weighted(&mut rng, &region_weights) as u8
                } else {
                    BIRTH_FOREIGN
                };
                let res_idx = if rng.random::<f64>() < 0.9 {
                    region
                } else {
                    pick_weighted(&mut rng, &region_weights)
                };
                let idx = directors.len();
                directors.push(PooledDirector {
                    female,
                    age_idx,
                    birth,
                    region_idx: res_idx as u8,
                });
                by_region[res_idx].push(idx as u32);
                by_sector[sector].push(idx as u32);
                idx
            };

            let d = &directors[director];
            let birthplace =
                if d.birth == BIRTH_FOREIGN { "foreign" } else { geography[d.birth as usize].1 };
            writeln!(
                out,
                "{},{},{},{},{},{},{},c{c}",
                if d.female { "F" } else { "M" },
                names::AGE_BANDS[d.age_idx as usize],
                birthplace,
                geography[d.region_idx as usize].0,
                names::SECTORS[sector].0,
                geography[region].0,
                geography[region].1,
            )
            .map_err(io_err)?;
            n_rows += 1;
        }
    }
    out.flush().map_err(io_err)?;
    Ok(StreamStats { n_companies: config.n_companies, n_directors: directors.len(), n_rows })
}

/// [`stream_final_table`] into a buffered file at `path`.
pub fn write_final_table_csv(
    config: BoardsConfig,
    path: impl AsRef<std::path::Path>,
) -> Result<StreamStats> {
    let path = path.as_ref();
    let io_err = |source: std::io::Error| scube_common::ScubeError::Io {
        path: Some(path.display().to_string()),
        source,
    };
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut out = std::io::BufWriter::with_capacity(1 << 20, file);
    let stats = stream_final_table(config, &mut out)?;
    out.into_inner().map_err(|e| io_err(e.into_error()))?.sync_all().map_err(io_err)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = italy(200);
        let b = italy(200);
        assert_eq!(a.individuals, b.individuals);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.membership, b.membership);
        let c = generate(BoardsConfig::italy(200).seed(99));
        assert_ne!(a.membership, c.membership);
    }

    #[test]
    fn sizes_track_configuration() {
        let boards = italy(500);
        assert_eq!(boards.groups.len(), 500);
        // Directors/companies ratio lands near the configured 1.67.
        let ratio = boards.individuals.len() as f64 / 500.0;
        assert!((1.2..2.2).contains(&ratio), "ratio {ratio}");
        // Mean board size near 2.8.
        let mean = boards.membership.len() as f64 / 500.0;
        assert!((2.2..3.6).contains(&mean), "mean board size {mean}");
    }

    #[test]
    fn planted_bias_shows_in_education_vs_construction() {
        let boards = italy(2000);
        let dataset = boards.to_dataset(vec![]).unwrap();
        // Count female share per sector through the membership join.
        let gender_col = boards.individuals.column_index("gender").unwrap();
        let sector_col = boards.groups.column_index("sector").unwrap();
        let mut counts: std::collections::HashMap<&str, (u64, u64)> = Default::default();
        for m in dataset.bipartite.memberships() {
            let sector = &boards.groups.rows()[m.group as usize][sector_col];
            let gender = &boards.individuals.rows()[m.individual as usize][gender_col];
            let e = counts.entry(sector.as_str()).or_default();
            e.1 += 1;
            if gender == "F" {
                e.0 += 1;
            }
        }
        let share = |s: &str| {
            let (f, t) = counts[s];
            f as f64 / t as f64
        };
        assert!(
            share("education") > share("construction") + 0.15,
            "education {} vs construction {}",
            share("education"),
            share("construction")
        );
    }

    #[test]
    fn bias_zero_flattens_sector_shares() {
        let biased = generate(BoardsConfig::italy(1500).sector_bias(1.0));
        let flat = generate(BoardsConfig::italy(1500).sector_bias(0.0).seed(7));
        let spread = |boards: &SyntheticBoards| {
            let gender_col = boards.individuals.column_index("gender").unwrap();
            let sector_col = boards.groups.column_index("sector").unwrap();
            let d = boards.to_dataset(vec![]).unwrap();
            let mut counts: std::collections::HashMap<String, (f64, f64)> = Default::default();
            for m in d.bipartite.memberships() {
                let sector = boards.groups.rows()[m.group as usize][sector_col].clone();
                let f = boards.individuals.rows()[m.individual as usize][gender_col] == "F";
                let e = counts.entry(sector).or_default();
                e.1 += 1.0;
                if f {
                    e.0 += 1.0;
                }
            }
            let shares: Vec<f64> =
                counts.values().filter(|&&(_, t)| t >= 30.0).map(|&(f, t)| f / t).collect();
            let mean = shares.iter().sum::<f64>() / shares.len() as f64;
            shares.iter().map(|s| (s - mean).abs()).sum::<f64>() / shares.len() as f64
        };
        assert!(
            spread(&biased) > 2.0 * spread(&flat),
            "biased {} vs flat {}",
            spread(&biased),
            spread(&flat)
        );
    }

    #[test]
    fn estonia_is_temporal_and_bounded() {
        let boards = estonia(300);
        assert_eq!(boards.membership.columns(), &["director", "company", "from", "to"]);
        let from_col = boards.membership.column_index("from").unwrap();
        let to_col = boards.membership.column_index("to").unwrap();
        for row in boards.membership.rows() {
            let from: i64 = row[from_col].parse().unwrap();
            let to: i64 = row[to_col].parse().unwrap();
            assert!((1995..=2014).contains(&from));
            assert!((1995..=2014).contains(&to));
            assert!(from <= to);
        }
        let years = boards.snapshot_years(5);
        assert_eq!(years.len(), 5);
        assert_eq!(years[0], 1995);
        assert_eq!(*years.last().unwrap(), 2014);
    }

    #[test]
    fn temporal_drift_raises_late_female_share() {
        let boards = estonia(3000);
        let gender_col = boards.individuals.column_index("gender").unwrap();
        let d = boards.to_dataset(vec![]).unwrap();
        let share_at = |year: i64| {
            let snap = d.bipartite.snapshot(year);
            let mut f = 0u64;
            let mut t = 0u64;
            let mut seen = std::collections::HashSet::new();
            for m in snap.memberships() {
                if seen.insert(m.individual) {
                    t += 1;
                    if boards.individuals.rows()[m.individual as usize][gender_col] == "F" {
                        f += 1;
                    }
                }
            }
            f as f64 / t.max(1) as f64
        };
        let early = share_at(1997);
        let late = share_at(2012);
        assert!(late > early, "late {late} <= early {early}");
    }

    #[test]
    fn streamed_final_table_is_deterministic_and_loads() {
        let mut a = Vec::new();
        let stats = stream_final_table(BoardsConfig::italy(400), &mut a).unwrap();
        let mut b = Vec::new();
        let again = stream_final_table(BoardsConfig::italy(400), &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(stats, again);
        assert_eq!(stats.n_companies, 400);
        // One row per seat, mean board size near the configured 2.8.
        let mean = stats.n_rows as f64 / 400.0;
        assert!((2.2..3.6).contains(&mean), "mean board size {mean}");
        let ratio = stats.n_directors as f64 / 400.0;
        assert!((1.2..2.2).contains(&ratio), "directors/companies {ratio}");

        // The emitted CSV round-trips through the streaming ingest: every
        // company is a unit, every seat a transaction.
        let dir = std::env::temp_dir().join(format!("scube_datagen_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let written = write_final_table_csv(BoardsConfig::italy(400), &path).unwrap();
        assert_eq!(written, stats);
        assert_eq!(std::fs::read(&path).unwrap(), a);
        let db = final_table_spec().load_csv(&path).unwrap();
        assert_eq!(db.len(), stats.n_rows);
        assert_eq!(db.num_units(), 400);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_final_table_keeps_planted_sector_bias() {
        let mut buf = Vec::new();
        stream_final_table(BoardsConfig::italy(3000), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut counts: std::collections::HashMap<&str, (u64, u64)> = Default::default();
        for line in text.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), FINAL_TABLE_COLUMNS.len());
            let e = counts.entry(fields[4]).or_default();
            e.1 += 1;
            if fields[0] == "F" {
                e.0 += 1;
            }
        }
        let share = |s: &str| {
            let (f, t) = counts[s];
            f as f64 / t as f64
        };
        assert!(
            share("education") > share("construction") + 0.15,
            "education {} vs construction {}",
            share("education"),
            share("construction")
        );
    }

    #[test]
    fn streamed_final_table_rejects_temporal_configs() {
        let mut buf = Vec::new();
        let err = stream_final_table(BoardsConfig::estonia(50), &mut buf).unwrap_err();
        assert!(err.to_string().contains("untimed"), "{err}");
    }

    #[test]
    fn dataset_roundtrip_validates() {
        let boards = italy(100);
        let d = boards.to_dataset(vec![]).unwrap();
        assert_eq!(d.num_individuals(), boards.individuals.len());
        assert_eq!(d.num_groups(), 100);
        assert_eq!(d.bipartite.memberships().len(), boards.membership.len());
    }
}
