//! The GraphBuilder + TableBuilder modules (Fig. 2): from a [`Dataset`] to
//! the encoded `finalTable`.
//!
//! Three unit strategies cover the paper's three demonstration scenarios:
//!
//! * [`UnitStrategy::GroupAttribute`] — tabular analysis: the value of one
//!   group attribute (e.g. company sector) *is* the organizational unit;
//! * [`UnitStrategy::ClusterIndividuals`] — project the bipartite graph
//!   onto individuals (directors sharing a board), cluster, one unit per
//!   community of individuals;
//! * [`UnitStrategy::ClusterGroups`] — project onto groups (companies
//!   sharing a director), cluster, one unit per community of companies.
//!
//! The final table then has one row per `(individual, unit)` with the
//! individual's SA/CA attributes joined with the context attributes of the
//! groups linking them to the unit (set-union per attribute — this is how
//! the multi-valued `sector = {electricity, transports}` rows of Fig. 3
//! arise).

use std::time::Instant;

use scube_common::{Result, ScubeError};
use scube_data::{Attribute, Relation, Schema, TransactionDb, TransactionDbBuilder};
use scube_graph::{Clustering, NodeAttributes, Projection};

use crate::inputs::Dataset;
use crate::stats::StageTimings;
use crate::unit_assignment::ClusteringMethod;

/// How organizational units are determined (selects the scenario).
#[derive(Debug, Clone, PartialEq)]
pub enum UnitStrategy {
    /// Scenario 1 (tabular): a group attribute value is the unit.
    GroupAttribute(String),
    /// Scenario 2 (graph): communities of individuals.
    ClusterIndividuals(ClusteringMethod),
    /// Scenario 3 (bipartite): communities of groups.
    ClusterGroups(ClusteringMethod),
}

/// Output of table building: the encoded final table plus the pipeline
/// by-products the paper's architecture exposes (`nodeUnit`, `isolated`).
#[derive(Debug)]
pub struct FinalTable {
    /// The encoded final table, ready for the cube builder.
    pub db: TransactionDb,
    /// The clustering used for units (graph scenarios only).
    pub clustering: Option<Clustering>,
    /// Projected-side nodes with no projection edges (`isolated` output).
    pub isolated: Vec<u32>,
    /// Stage timings (projection / clustering / join), for the efficiency
    /// experiments.
    pub timings: StageTimings,
}

/// Column handles resolved once per build.
struct Columns {
    ind_sa: Vec<(usize, bool)>,
    ind_ca: Vec<(usize, bool)>,
    grp_ca: Vec<(usize, bool, String)>,
}

fn resolve_columns(dataset: &Dataset, exclude_group_attr: Option<&str>) -> Result<Columns> {
    let ind = &dataset.individuals;
    let grp = &dataset.groups;
    let col = |rel: &Relation, name: &str, what: &str| -> Result<usize> {
        rel.column_index(name)
            .ok_or_else(|| ScubeError::Schema(format!("{what}: missing column '{name}'")))
    };
    let mut ind_sa = Vec::new();
    for (name, multi) in &dataset.individuals_spec.sa_columns {
        ind_sa.push((col(ind, name, "individuals")?, *multi));
    }
    let mut ind_ca = Vec::new();
    for (name, multi) in &dataset.individuals_spec.ca_columns {
        ind_ca.push((col(ind, name, "individuals")?, *multi));
    }
    let mut grp_ca = Vec::new();
    for (name, multi) in &dataset.groups_spec.ca_columns {
        if exclude_group_attr == Some(name.as_str()) {
            continue;
        }
        grp_ca.push((col(grp, name, "groups")?, *multi, name.clone()));
    }
    Ok(Columns { ind_sa, ind_ca, grp_ca })
}

/// Schema of the final table: individual SA, individual CA, then group CA.
///
/// Group-derived context attributes are always multi-valued: a row unions
/// the values over every group connecting the individual to the unit.
fn final_schema(dataset: &Dataset, columns: &Columns) -> Result<Schema> {
    let mut attrs = Vec::new();
    for (i, (name, multi)) in dataset.individuals_spec.sa_columns.iter().enumerate() {
        let _ = i;
        let mut a = Attribute::sa(name.clone());
        a.multi_valued = *multi;
        attrs.push(a);
    }
    for (name, multi) in &dataset.individuals_spec.ca_columns {
        let mut a = Attribute::ca(name.clone());
        a.multi_valued = *multi;
        attrs.push(a);
    }
    for (_, _, name) in &columns.grp_ca {
        attrs.push(Attribute::ca(name.clone()).multi());
    }
    Schema::new(attrs)
}

/// Split one CSV cell according to its multi-valued flag.
fn cell_values(cell: &str, multi: bool) -> Vec<String> {
    if multi {
        cell.split(scube_data::MULTI_VALUE_SEPARATOR)
            .map(str::trim)
            .filter(|v| !v.is_empty())
            .map(str::to_string)
            .collect()
    } else if cell.trim().is_empty() {
        Vec::new()
    } else {
        vec![cell.trim().to_string()]
    }
}

/// Node attributes for SToC: every attribute value of the node's relation
/// row, interned to dense codes.
fn node_attributes(rel: &Relation, cols: &[(usize, bool)]) -> NodeAttributes {
    let mut dict: scube_common::FxHashMap<String, u32> = scube_common::FxHashMap::default();
    let mut rows = Vec::with_capacity(rel.len());
    for row in rel.rows() {
        let mut codes = Vec::new();
        for &(c, multi) in cols {
            for v in cell_values(&row[c], multi) {
                let next = dict.len() as u32;
                let code = *dict.entry(v).or_insert(next);
                codes.push(code);
            }
        }
        rows.push(codes);
    }
    NodeAttributes::from_rows(rows)
}

/// `individual → sorted unique groups` from the dataset's bipartite graph.
fn groups_per_individual(dataset: &Dataset) -> Vec<Vec<u32>> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); dataset.num_individuals()];
    for m in dataset.bipartite.memberships() {
        adj[m.individual as usize].push(m.group);
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Build the final table for a dataset under a unit strategy.
///
/// `min_shared` is the projection weight threshold (minimum number of
/// shared individuals/groups for a projection edge; 1 keeps everything).
pub fn build_final_table(
    dataset: &Dataset,
    strategy: &UnitStrategy,
    min_shared: u32,
) -> Result<FinalTable> {
    match strategy {
        UnitStrategy::GroupAttribute(attr) => build_by_group_attribute(dataset, attr),
        UnitStrategy::ClusterIndividuals(method) => {
            build_by_individual_clusters(dataset, method, min_shared)
        }
        UnitStrategy::ClusterGroups(method) => build_by_group_clusters(dataset, method, min_shared),
    }
}

fn build_by_group_attribute(dataset: &Dataset, unit_attr: &str) -> Result<FinalTable> {
    let mut timings = StageTimings::default();
    let columns = resolve_columns(dataset, Some(unit_attr))?;
    let unit_col = dataset.groups.column_index(unit_attr).ok_or_else(|| {
        ScubeError::Schema(format!("groups: missing unit attribute column '{unit_attr}'"))
    })?;
    // Is the unit attribute declared multi-valued? A group may belong to
    // several units then (one row per unit).
    let unit_multi = dataset
        .groups_spec
        .ca_columns
        .iter()
        .find(|(n, _)| n == unit_attr)
        .map(|(_, m)| *m)
        .unwrap_or(false);

    let join_start = Instant::now();
    let schema = final_schema(dataset, &columns)?;
    let mut builder = TransactionDbBuilder::new(schema);
    let adjacency = groups_per_individual(dataset);

    for (ind, groups) in adjacency.iter().enumerate() {
        // Unit values this individual reaches, with the groups per unit.
        let mut units: Vec<(String, Vec<u32>)> = Vec::new();
        for &g in groups {
            for unit in cell_values(&dataset.groups.rows()[g as usize][unit_col], unit_multi) {
                match units.iter_mut().find(|(u, _)| *u == unit) {
                    Some((_, gs)) => gs.push(g),
                    None => units.push((unit, vec![g])),
                }
            }
        }
        for (unit, unit_groups) in &units {
            let values = row_values(dataset, &columns, ind, unit_groups);
            builder.add_row(&values, unit)?;
        }
    }
    timings.join = join_start.elapsed();
    Ok(FinalTable { db: builder.finish(), clustering: None, isolated: Vec::new(), timings })
}

fn build_by_group_clusters(
    dataset: &Dataset,
    method: &ClusteringMethod,
    min_shared: u32,
) -> Result<FinalTable> {
    let mut timings = StageTimings::default();

    let t = Instant::now();
    let Projection { graph, isolated } = dataset.bipartite.project_groups(min_shared);
    timings.projection = t.elapsed();

    let t = Instant::now();
    let grp_cols: Vec<(usize, bool)> =
        resolve_columns(dataset, None)?.grp_ca.iter().map(|&(c, m, _)| (c, m)).collect();
    let attrs = node_attributes(&dataset.groups, &grp_cols);
    let clustering = method.cluster(&graph, &attrs);
    timings.clustering = t.elapsed();

    let t = Instant::now();
    let columns = resolve_columns(dataset, None)?;
    let schema = final_schema(dataset, &columns)?;
    let mut builder = TransactionDbBuilder::new(schema);
    let adjacency = groups_per_individual(dataset);
    for (ind, groups) in adjacency.iter().enumerate() {
        // Units this individual reaches, with the member groups per unit.
        let mut units: Vec<(u32, Vec<u32>)> = Vec::new();
        for &g in groups {
            let unit = clustering.of(g);
            match units.iter_mut().find(|(u, _)| *u == unit) {
                Some((_, gs)) => gs.push(g),
                None => units.push((unit, vec![g])),
            }
        }
        for (unit, unit_groups) in &units {
            let values = row_values(dataset, &columns, ind, unit_groups);
            builder.add_row(&values, &format!("C{unit}"))?;
        }
    }
    timings.join = t.elapsed();
    Ok(FinalTable { db: builder.finish(), clustering: Some(clustering), isolated, timings })
}

fn build_by_individual_clusters(
    dataset: &Dataset,
    method: &ClusteringMethod,
    min_shared: u32,
) -> Result<FinalTable> {
    let mut timings = StageTimings::default();

    let t = Instant::now();
    let Projection { graph, isolated } = dataset.bipartite.project_individuals(min_shared);
    timings.projection = t.elapsed();

    let t = Instant::now();
    let columns = resolve_columns(dataset, None)?;
    let ind_cols: Vec<(usize, bool)> =
        columns.ind_sa.iter().chain(columns.ind_ca.iter()).copied().collect();
    let attrs = node_attributes(&dataset.individuals, &ind_cols);
    let clustering = method.cluster(&graph, &attrs);
    timings.clustering = t.elapsed();

    let t = Instant::now();
    let schema = final_schema(dataset, &columns)?;
    let mut builder = TransactionDbBuilder::new(schema);
    let adjacency = groups_per_individual(dataset);
    for (ind, groups) in adjacency.iter().enumerate() {
        // One row per individual: the unit is the individual's community.
        let values = row_values(dataset, &columns, ind, groups);
        builder.add_row(&values, &format!("C{}", clustering.of(ind as u32)))?;
    }
    timings.join = t.elapsed();
    Ok(FinalTable { db: builder.finish(), clustering: Some(clustering), isolated, timings })
}

/// Values of one final-table row: the individual's own attributes followed
/// by the union of the linking groups' context attributes.
fn row_values(
    dataset: &Dataset,
    columns: &Columns,
    ind: usize,
    groups: &[u32],
) -> Vec<Vec<String>> {
    let ind_row = &dataset.individuals.rows()[ind];
    let mut values: Vec<Vec<String>> =
        Vec::with_capacity(columns.ind_sa.len() + columns.ind_ca.len() + columns.grp_ca.len());
    for &(c, multi) in columns.ind_sa.iter().chain(columns.ind_ca.iter()) {
        values.push(cell_values(&ind_row[c], multi));
    }
    for &(c, multi, _) in &columns.grp_ca {
        let mut union: Vec<String> = Vec::new();
        for &g in groups {
            for v in cell_values(&dataset.groups.rows()[g as usize][c], multi) {
                if !union.contains(&v) {
                    union.push(v);
                }
            }
        }
        values.push(union);
    }
    values
}

/// Render an encoded final table back into a [`Relation`] (Fig. 3's
/// `finalTable.csv`): one column per attribute (multi-valued cells
/// `;`-joined) plus `unitID`.
pub fn final_table_relation(db: &TransactionDb) -> Relation {
    let schema = db.schema();
    let mut columns: Vec<String> = schema.attributes().iter().map(|a| a.name.clone()).collect();
    columns.push("unitID".to_string());
    let mut rel = Relation::new(columns).expect("schema names are unique");
    for t in 0..db.len() {
        let mut per_attr: Vec<Vec<&str>> = vec![Vec::new(); schema.len()];
        for &item in db.transaction(t) {
            let attr = db.dictionary().attr_of(item);
            per_attr[attr as usize].push(db.dictionary().value_of(item));
        }
        let mut row: Vec<String> = per_attr.into_iter().map(|vs| vs.join(";")).collect();
        row.push(db.unit_name(db.unit_of(t)).to_string());
        rel.push_row(row).expect("arity matches by construction");
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::{GroupsSpec, IndividualsSpec, MembershipSpec};

    fn rel(cols: &[&str], rows: &[&[&str]]) -> Relation {
        let mut r = Relation::new(cols.iter().map(|s| s.to_string()).collect()).unwrap();
        for row in rows {
            r.push_row(row.iter().map(|s| s.to_string()).collect()).unwrap();
        }
        r
    }

    /// d1 sits in c1 (edu, north) and c2 (transport, north); d2 in c2;
    /// d3 in c3 (edu, south); d4 has no board seat.
    fn dataset() -> Dataset {
        let individuals = rel(
            &["id", "gender", "res"],
            &[
                &["d1", "F", "north"],
                &["d2", "M", "north"],
                &["d3", "F", "south"],
                &["d4", "M", "south"],
            ],
        );
        let groups = rel(
            &["id", "sector", "hq"],
            &[&["c1", "edu", "north"], &["c2", "transport", "north"], &["c3", "edu", "south"]],
        );
        let membership =
            rel(&["dir", "comp"], &[&["d1", "c1"], &["d1", "c2"], &["d2", "c2"], &["d3", "c3"]]);
        Dataset::new(
            individuals,
            IndividualsSpec::new("id").sa("gender").ca("res"),
            groups,
            GroupsSpec::new("id").ca("sector").ca("hq"),
            &membership,
            &MembershipSpec::new("dir", "comp"),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn scenario1_group_attribute_units() {
        let d = dataset();
        let ft = build_final_table(&d, &UnitStrategy::GroupAttribute("sector".into()), 1).unwrap();
        // d1 reaches units edu and transport → 2 rows; d2 → 1; d3 → 1.
        assert_eq!(ft.db.len(), 4);
        assert_eq!(ft.db.num_units(), 2);
        assert!(ft.clustering.is_none());
        // The unit attribute is excluded from the CA columns.
        assert!(ft.db.schema().attr_id("sector").is_none());
        assert!(ft.db.schema().attr_id("hq").is_some());
        // Unit names are the sector values.
        let names: Vec<&str> = ft.db.unit_names().iter().map(String::as_str).collect();
        assert!(names.contains(&"edu") && names.contains(&"transport"));
    }

    #[test]
    fn scenario3_group_clusters() {
        let d = dataset();
        let ft = build_final_table(
            &d,
            &UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents),
            1,
        )
        .unwrap();
        // Projection: c1–c2 share d1 → one component {c1,c2}; c3 isolated.
        let clustering = ft.clustering.as_ref().unwrap();
        assert_eq!(clustering.num_clusters(), 2);
        assert_eq!(ft.isolated, vec![2]); // c3 has no projection edge
                                          // Rows: d1 → unit {c1,c2} (1 row), d2 → same unit, d3 → unit {c3}.
        assert_eq!(ft.db.len(), 3);
        // d1's row unions sectors of c1 and c2 → multi-valued sector.
        let d1_items: Vec<String> =
            ft.db.transaction(0).iter().map(|&i| ft.db.item_label(i)).collect();
        assert!(d1_items.contains(&"sector=edu".to_string()));
        assert!(d1_items.contains(&"sector=transport".to_string()));
    }

    #[test]
    fn scenario2_individual_clusters() {
        let d = dataset();
        let ft = build_final_table(
            &d,
            &UnitStrategy::ClusterIndividuals(ClusteringMethod::ConnectedComponents),
            1,
        )
        .unwrap();
        // Directors d1–d2 share board c2 → same community; d3 alone; d4 has
        // no memberships (isolated singleton, no final-table row since the
        // row set is driven by memberships... d4 has no groups → still gets
        // a row with empty group CA).
        assert_eq!(ft.db.len(), 4);
        let clustering = ft.clustering.as_ref().unwrap();
        assert_eq!(clustering.of(0), clustering.of(1));
        assert_ne!(clustering.of(0), clustering.of(2));
        // d4 row: no group-derived items.
        let d4_items: Vec<String> =
            ft.db.transaction(3).iter().map(|&i| ft.db.item_label(i)).collect();
        assert!(d4_items.iter().all(|l| !l.starts_with("sector=")));
        assert!(d4_items.contains(&"gender=M".to_string()));
    }

    #[test]
    fn final_table_relation_roundtrip_shape() {
        let d = dataset();
        let ft = build_final_table(&d, &UnitStrategy::GroupAttribute("sector".into()), 1).unwrap();
        let rel = final_table_relation(&ft.db);
        assert_eq!(rel.len(), ft.db.len());
        assert_eq!(rel.columns(), &["gender", "res", "hq", "unitID"]);
        // Multi-valued cells are ';'-joined; every row has a unit.
        for row in rel.rows() {
            assert!(!row.last().unwrap().is_empty());
        }
    }

    #[test]
    fn missing_unit_attribute_rejected() {
        let d = dataset();
        let err =
            build_final_table(&d, &UnitStrategy::GroupAttribute("nope".into()), 1).unwrap_err();
        assert!(err.to_string().contains("unit attribute"));
    }

    #[test]
    fn min_shared_threshold_affects_projection() {
        let d = dataset();
        // With min_shared = 2 no company pair shares 2 directors → all
        // companies isolated → every company is its own unit.
        let ft = build_final_table(
            &d,
            &UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents),
            2,
        )
        .unwrap();
        assert_eq!(ft.clustering.as_ref().unwrap().num_clusters(), 3);
        assert_eq!(ft.isolated.len(), 3);
    }
}
