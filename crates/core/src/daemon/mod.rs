//! `scubed`: the long-running serving daemon over [`ConcurrentCubeEngine`].
//!
//! A [`Daemon`] owns a registry of named cubes, each a [`CubeHandle`]
//! pairing a *master* [`CubeSnapshot`] (the mutable owner that absorbs
//! [`UpdateBatch`]es through the incremental `apply_update` maintenance
//! path) with a *serving* engine behind an atomically swappable `Arc`.
//! Readers clone the `Arc` (O(1), wait-free after the spinlock) and answer
//! from an engine that never mutates, so a concurrent `POST /update` can
//! never produce a torn answer: every response is bit-identical to either
//! the complete pre-update or the complete post-update engine.
//!
//! # Endpoints
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | GET | `/healthz` | liveness probe |
//! | GET | `/cubes` | registry listing |
//! | GET | `/cubes/<name>/query?sa=a=v,..&ca=a=v,..` | one cell's indexes |
//! | GET | `/cubes/<name>/topk?index=gini&k=10&min_total=1` | top-k ranking |
//! | GET | `/cubes/<name>/slice?fixed=a=v,..` | slice view |
//!
//! `/query` and `/slice` accept an optional `index=<name>` parameter to
//! answer with that single measure; `/query` additionally accepts
//! `significance=1` to attach a permutation-test block per index
//! (deterministic seed, 999 permutations — see
//! [`scube_segindex::PermutationTest`]).
//! | GET | `/cubes/<name>/dice?attrs=a,b` | dice view |
//! | GET | `/cubes/<name>/breakdown?sa=a=v,..&ca=a=v,..` | per-unit drill-down |
//! | GET | `/stats` | tier counters + per-endpoint request/latency counters |
//! | POST | `/cubes/<name>/update` | apply an [`UpdateBatch`], hot-swap |
//! | POST | `/shutdown` | graceful shutdown (drains in-flight requests) |
//!
//! With exactly one cube registered, `/query`, `/topk`, `/slice`, `/dice`,
//! `/breakdown`, and `/update` are aliases for that cube's endpoints.
//!
//! # Robustness
//!
//! The HTTP layer (`minihttp`) never panics on wire bytes — malformed
//! requests get structured 4xx responses. Request handlers additionally run
//! under `catch_unwind`, so even a panicking handler costs one 500, never
//! the process. Engine worker panics are already converted to errors inside
//! `query_batch`/`top_k_batch`.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use minihttp::{percent_decode, HttpRequest, HttpResponse, HttpServer, Limits, RequestOutcome};
use scube_common::{Result, ScubeError, SpinLock};
use scube_cube::{
    CellCoords, ConcurrentCubeEngine, CubeLabels, CubeSnapshot, QueryStats, UpdateBatch,
    UpdateStats, DEFAULT_CACHE_CAPACITY, DEFAULT_SHARDS,
};
use scube_segindex::{IndexValues, PermutationTest, SegIndex, UnitCounts};

pub mod json;

use json::Json;

/// Tuning knobs for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Accept/serve worker threads.
    pub workers: usize,
    /// Cache shards per engine (see [`ConcurrentCubeEngine::with_config`]).
    pub shards: usize,
    /// Per-engine fallback-cache weight budget.
    pub cache_capacity: usize,
    /// Worker threads for the dirty-cell re-evaluation phase of an update.
    pub update_threads: usize,
    /// Worker threads for ranking in `/topk` (clamped per request).
    pub query_threads: usize,
    /// Maximum accepted request-body length in bytes (`POST /update`
    /// payloads); oversized bodies are refused with a 413 naming this cap.
    pub max_body: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        DaemonConfig {
            workers: host.clamp(2, 8),
            shards: DEFAULT_SHARDS,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            update_threads: host.min(8),
            query_threads: host.min(8),
            max_body: Limits::default().max_body,
        }
    }
}

/// One resident cube: master snapshot + hot-swappable serving engine.
pub struct CubeHandle {
    /// The mutable owner; `POST /update` applies batches here through the
    /// incremental maintenance path, then publishes a fresh engine.
    master: Mutex<CubeSnapshot>,
    /// The engine readers answer from. Swapped atomically (under a brief
    /// spinlock; readers only clone the `Arc`).
    serving: SpinLock<Arc<ConcurrentCubeEngine>>,
    /// Query-tier counters accumulated from engines retired by hot-swaps,
    /// so `/stats` stays exact across swaps.
    retired: Mutex<QueryStats>,
    /// Number of successful hot-swaps.
    swaps: AtomicU64,
    shards: usize,
    cache_capacity: usize,
}

impl CubeHandle {
    fn new(snapshot: CubeSnapshot, config: &DaemonConfig) -> CubeHandle {
        let engine = ConcurrentCubeEngine::with_config(
            snapshot.clone(),
            config.shards,
            config.cache_capacity,
        );
        CubeHandle {
            master: Mutex::new(snapshot),
            serving: SpinLock::new(Arc::new(engine)),
            retired: Mutex::new(QueryStats::default()),
            swaps: AtomicU64::new(0),
            shards: config.shards,
            cache_capacity: config.cache_capacity,
        }
    }

    /// The current serving engine (an O(1) `Arc` clone; the returned engine
    /// keeps answering consistently even across a concurrent hot-swap).
    pub fn engine(&self) -> Arc<ConcurrentCubeEngine> {
        Arc::clone(&self.serving.lock())
    }

    /// Apply `batch` to the master snapshot and atomically publish a fresh
    /// engine. Readers holding the old engine finish their in-flight
    /// queries against it; new requests see the new engine.
    pub fn update(&self, batch: &UpdateBatch, threads: usize) -> Result<UpdateStats> {
        // A panic inside a previous update (after catch_unwind) poisons the
        // mutex; keep serving rather than turning every later update into
        // a 500 — apply_update validates inputs before mutating.
        let mut master = self.master.lock().unwrap_or_else(|p| p.into_inner());
        let stats = master.apply_update_threads(batch, threads)?;
        let fresh =
            ConcurrentCubeEngine::with_config(master.clone(), self.shards, self.cache_capacity);
        let old = {
            let mut serving = self.serving.lock();
            std::mem::replace(&mut *serving, Arc::new(fresh))
        };
        self.accumulate_retired(&old.stats());
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(stats)
    }

    fn accumulate_retired(&self, s: &QueryStats) {
        let mut retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        retired.materialized += s.materialized;
        retired.cached += s.cached;
        retired.explored += s.explored;
        retired.breakdown_computed += s.breakdown_computed;
        retired.breakdown_cached += s.breakdown_cached;
    }

    /// Exact lifetime query-tier counters: current engine + all retired.
    pub fn lifetime_stats(&self) -> QueryStats {
        let current = self.engine().stats();
        let retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        QueryStats {
            materialized: retired.materialized + current.materialized,
            cached: retired.cached + current.cached,
            explored: retired.explored + current.explored,
            breakdown_computed: retired.breakdown_computed + current.breakdown_computed,
            breakdown_cached: retired.breakdown_cached + current.breakdown_cached,
        }
    }

    /// Hot-swaps performed so far.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// Endpoint identifiers for per-endpoint counters, in `/stats` order.
const ENDPOINTS: [&str; 9] =
    ["query", "topk", "slice", "dice", "breakdown", "stats", "update", "admin", "other"];

const EP_QUERY: usize = 0;
const EP_TOPK: usize = 1;
const EP_SLICE: usize = 2;
const EP_DICE: usize = 3;
const EP_BREAKDOWN: usize = 4;
const EP_STATS: usize = 5;
const EP_UPDATE: usize = 6;
const EP_ADMIN: usize = 7;
const EP_OTHER: usize = 8;

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    micros: AtomicU64,
}

struct State {
    cubes: Vec<(String, CubeHandle)>,
    endpoints: [EndpointStats; 9],
    config: DaemonConfig,
    started: Instant,
}

impl State {
    fn cube(&self, name: &str) -> Option<&CubeHandle> {
        self.cubes.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The implicit cube for single-cube alias routes.
    fn only_cube(&self) -> Option<&CubeHandle> {
        match self.cubes.as_slice() {
            [(_, handle)] => Some(handle),
            _ => None,
        }
    }
}

/// The serving daemon. Bind, then either [`Daemon::run`] (blocks until a
/// `POST /shutdown`) or drive it from tests via its bound address.
pub struct Daemon {
    server: Arc<HttpServer>,
    state: Arc<State>,
}

impl Daemon {
    /// Bind `addr` and build one serving engine per named snapshot.
    ///
    /// Names must be non-empty, unique, and URL-safe (`[A-Za-z0-9_-]`).
    pub fn bind(
        addr: &str,
        cubes: Vec<(String, CubeSnapshot)>,
        config: DaemonConfig,
    ) -> Result<Daemon> {
        if cubes.is_empty() {
            return Err(ScubeError::InvalidParameter("no cubes to serve".into()));
        }
        let mut handles: Vec<(String, CubeHandle)> = Vec::with_capacity(cubes.len());
        for (name, snapshot) in cubes {
            if name.is_empty()
                || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(ScubeError::InvalidParameter(format!(
                    "cube name {name:?} is not URL-safe"
                )));
            }
            if handles.iter().any(|(n, _)| *n == name) {
                return Err(ScubeError::InvalidParameter(format!("duplicate cube {name:?}")));
            }
            handles.push((name, CubeHandle::new(snapshot, &config)));
        }
        let server = HttpServer::bind(addr)
            .map_err(|e| ScubeError::Io { path: Some(addr.to_string()), source: e })?
            .with_limits(Limits { max_body: config.max_body, ..Limits::default() });
        Ok(Daemon {
            server: Arc::new(server),
            state: Arc::new(State {
                cubes: handles,
                endpoints: Default::default(),
                config,
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.server
            .local_addr()
            .map_err(|e| ScubeError::Io { path: Some("listener".into()), source: e })
    }

    /// A handle that can stop the daemon from another thread.
    pub fn stopper(&self) -> DaemonStopper {
        DaemonStopper { server: Arc::clone(&self.server) }
    }

    /// Serve until shutdown. Spawns the configured worker threads and
    /// joins them; each worker drains its in-flight connection before
    /// exiting, so responses already being computed are always delivered.
    pub fn run(self) -> Result<()> {
        let workers = self.state.config.workers.max(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let server = &self.server;
                    let state = &self.state;
                    scope.spawn(move || worker_loop(server, state))
                })
                .collect();
            for h in handles {
                // A worker that somehow panicked outside catch_unwind must
                // not abort shutdown of the rest.
                let _ = h.join();
            }
        });
        Ok(())
    }
}

/// Stops a [`Daemon`] from outside its serving threads.
pub struct DaemonStopper {
    server: Arc<HttpServer>,
}

impl DaemonStopper {
    /// Begin graceful shutdown: acceptors stop, in-flight requests drain.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }
}

fn worker_loop(server: &HttpServer, state: &State) {
    while let Ok(Some(mut conn)) = server.accept() {
        loop {
            match conn.next_request() {
                Ok(RequestOutcome::Request(req)) => {
                    let keep = req.keep_alive;
                    let t0 = Instant::now();
                    let (ep, resp) = dispatch_guarded(server, state, &req);
                    let stats = &state.endpoints[ep];
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    if resp.status >= 400 {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    stats.micros.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                    if conn.respond(&resp).is_err() {
                        break;
                    }
                    if resp.close || !keep || server.is_shutting_down() {
                        break;
                    }
                }
                Ok(RequestOutcome::Idle) => {
                    if server.is_shutting_down() {
                        break;
                    }
                }
                Ok(RequestOutcome::Closed) => break,
                Ok(RequestOutcome::Malformed(e)) => {
                    let stats = &state.endpoints[EP_OTHER];
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = conn.respond(&HttpResponse::from_error(&e));
                    break;
                }
                Err(_) => break,
            }
        }
    }
}

/// Route one request, converting handler panics into a 500 — a poisoned
/// query must cost one response, never the process.
fn dispatch_guarded(
    server: &HttpServer,
    state: &State,
    req: &HttpRequest,
) -> (usize, HttpResponse) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(server, state, req))) {
        Ok(done) => done,
        Err(_) => {
            (EP_OTHER, HttpResponse::json(500, "{\"error\":\"handler panicked; request dropped\"}"))
        }
    }
}

fn dispatch(server: &HttpServer, state: &State, req: &HttpRequest) -> (usize, HttpResponse) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (cube, verb): (Option<&CubeHandle>, &str) = match segments.as_slice() {
        ["cubes", name, verb] => match state.cube(name) {
            Some(h) => (Some(h), *verb),
            None => {
                return (
                    EP_OTHER,
                    HttpResponse::json(
                        404,
                        format!("{{\"error\":\"no cube {}\"}}", json::escape(name)),
                    ),
                )
            }
        },
        ["cubes"] => {
            return match req.method.as_str() {
                "GET" => (EP_ADMIN, list_cubes(state)),
                _ => (EP_ADMIN, method_not_allowed()),
            }
        }
        [verb] => (state.only_cube(), *verb),
        _ => return (EP_OTHER, not_found()),
    };
    let endpoint = match verb {
        "query" => EP_QUERY,
        "topk" => EP_TOPK,
        "slice" => EP_SLICE,
        "dice" => EP_DICE,
        "breakdown" => EP_BREAKDOWN,
        "stats" => EP_STATS,
        "update" => EP_UPDATE,
        "healthz" | "shutdown" => EP_ADMIN,
        _ => return (EP_OTHER, not_found()),
    };
    // Admin verbs that need no cube.
    match (req.method.as_str(), verb) {
        ("GET", "healthz") => return (endpoint, HttpResponse::text(200, "ok\n")),
        ("POST", "shutdown") => {
            server.shutdown();
            return (endpoint, HttpResponse::text(200, "shutting down\n"));
        }
        ("GET", "stats") if segments.len() == 1 => return (endpoint, stats_response(state)),
        _ => {}
    }
    let Some(handle) = cube else {
        let msg = if state.cubes.len() > 1 {
            "{\"error\":\"multiple cubes are loaded; use /cubes/<name>/...\"}"
        } else {
            "{\"error\":\"unknown path\"}"
        };
        return (endpoint, HttpResponse::json(404, msg));
    };
    let resp = match (req.method.as_str(), verb) {
        ("GET", "query") => cell_query(handle, &req.query, false),
        ("GET", "breakdown") => cell_query(handle, &req.query, true),
        ("GET", "topk") => top_k(state, handle, &req.query),
        ("GET", "slice") => slice(handle, &req.query),
        ("GET", "dice") => dice(handle, &req.query),
        ("GET", "stats") => cube_stats(handle),
        ("POST", "update") => update(state, handle, &req.body),
        _ => method_not_allowed(),
    };
    (endpoint, resp)
}

fn not_found() -> HttpResponse {
    HttpResponse::json(404, "{\"error\":\"unknown path\"}")
}

fn method_not_allowed() -> HttpResponse {
    HttpResponse::json(405, "{\"error\":\"method not allowed\"}")
}

fn bad_request(msg: &str) -> HttpResponse {
    HttpResponse::json(400, format!("{{\"error\":\"{}\"}}", json::escape(msg)))
}

/// Map an engine error onto a status: caller mistakes are 4xx, everything
/// else (I/O, inconsistent data, worker panics) is a 500.
fn error_response(err: &ScubeError) -> HttpResponse {
    let status = match err {
        ScubeError::InvalidParameter(_) | ScubeError::Schema(_) | ScubeError::Csv { .. } => 400,
        _ => 500,
    };
    HttpResponse::json(status, format!("{{\"error\":\"{}\"}}", json::escape(&err.to_string())))
}

// ---------------------------------------------------------------------------
// Query-string handling
// ---------------------------------------------------------------------------

/// Decode `k=v&k2=v2` with percent-encoding; duplicates are rejected so a
/// request can't smuggle two conflicting values for one parameter.
fn query_params(raw: &str) -> std::result::Result<Vec<(String, String)>, String> {
    let mut out: Vec<(String, String)> = Vec::new();
    for piece in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        let k = percent_decode(k).ok_or_else(|| format!("bad percent-encoding in {piece:?}"))?;
        let v = percent_decode(v).ok_or_else(|| format!("bad percent-encoding in {piece:?}"))?;
        if out.iter().any(|(existing, _)| *existing == k) {
            return Err(format!("duplicate parameter {k:?}"));
        }
        out.push((k, v));
    }
    Ok(out)
}

fn param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Parse the CLI's `attr=value,attr=value` pair list (empty → empty list).
fn pair_list(raw: &str) -> std::result::Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for piece in raw.split(',').filter(|p| !p.is_empty()) {
        match piece.split_once('=') {
            Some((a, v)) if !a.is_empty() && !v.is_empty() => {
                out.push((a.to_string(), v.to_string()))
            }
            _ => return Err(format!("expected attr=value, got {piece:?}")),
        }
    }
    Ok(out)
}

fn usize_param(
    params: &[(String, String)],
    key: &str,
    default: usize,
) -> std::result::Result<usize, String> {
    match param(params, key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad {key}: {raw:?}")),
    }
}

fn u64_param(
    params: &[(String, String)],
    key: &str,
    default: u64,
) -> std::result::Result<u64, String> {
    match param(params, key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad {key}: {raw:?}")),
    }
}

fn as_refs(pairs: &[(String, String)]) -> Vec<(&str, &str)> {
    pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())).collect()
}

// ---------------------------------------------------------------------------
// Response rendering (public so tests and the load generator can build the
// expected bytes from an in-process engine and compare bit-for-bit)
// ---------------------------------------------------------------------------

/// Render one [`IndexValues`] as a JSON object. Floats use shortest-round-
/// trip formatting, so parsing them back recovers identical bits.
pub fn values_json(v: &IndexValues) -> String {
    format!(
        "{{\"dissimilarity\":{},\"gini\":{},\"information\":{},\"isolation\":{},\"interaction\":{},\"atkinson\":{},\"minority\":{},\"total\":{},\"num_units\":{}}}",
        json::opt_num(v.dissimilarity),
        json::opt_num(v.gini),
        json::opt_num(v.information),
        json::opt_num(v.isolation),
        json::opt_num(v.interaction),
        json::opt_num(v.atkinson),
        v.minority,
        v.total,
        v.num_units,
    )
}

/// Render one selected measure of a cell (the `?index=` response form).
pub fn values_json_one(v: &IndexValues, index: SegIndex) -> String {
    format!(
        "{{\"index\":\"{}\",\"value\":{},\"minority\":{},\"total\":{},\"num_units\":{}}}",
        index.name(),
        json::opt_num(v.get(index)),
        v.minority,
        v.total,
        v.num_units,
    )
}

/// Render cell coordinates as `{"sa":[["attr","value"],..],"ca":[..]}`
/// (sorted item order, as stored).
pub fn coords_json(labels: &CubeLabels, coords: &CellCoords) -> String {
    let side = |items: &[u32]| {
        let pairs: Vec<String> = items
            .iter()
            .map(|&item| {
                format!(
                    "[\"{}\",\"{}\"]",
                    json::escape(labels.attr_of(item)),
                    json::escape(labels.value_of(item))
                )
            })
            .collect();
        format!("[{}]", pairs.join(","))
    };
    format!("{{\"sa\":{},\"ca\":{}}}", side(&coords.sa), side(&coords.ca))
}

/// Render the body of a `/query` (or `/breakdown`) response.
pub fn cell_json(labels: &CubeLabels, coords: &CellCoords, values: &IndexValues) -> String {
    format!(
        "{{\"cell\":{},\"describe\":\"{}\",\"values\":{}}}",
        coords_json(labels, coords),
        json::escape(&labels.describe(coords)),
        values_json(values),
    )
}

/// Render a `/breakdown` response: the cell plus per-unit counts.
pub fn breakdown_json(
    labels: &CubeLabels,
    coords: &CellCoords,
    rows: &[(u32, u64, u64)],
) -> String {
    let units: Vec<String> = rows
        .iter()
        .map(|&(unit, minority, total)| {
            let name = labels.unit_names.get(unit as usize).map(|s| s.as_str()).unwrap_or("?");
            format!("[\"{}\",{},{}]", json::escape(name), minority, total)
        })
        .collect();
    format!("{{\"cell\":{},\"units\":[{}]}}", coords_json(labels, coords), units.join(","),)
}

/// Render a `/topk` response body for one index.
pub fn topk_json(
    labels: &CubeLabels,
    index: SegIndex,
    rows: &[(CellCoords, IndexValues, f64)],
) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|(coords, values, score)| {
            format!(
                "{{\"cell\":{},\"score\":{},\"values\":{}}}",
                coords_json(labels, coords),
                json::num(*score),
                values_json(values),
            )
        })
        .collect();
    format!("{{\"index\":\"{}\",\"rows\":[{}]}}", index.name(), rendered.join(","))
}

/// Render a `/slice` / `/dice` response body.
pub fn cells_json(labels: &CubeLabels, cells: &[(CellCoords, IndexValues)]) -> String {
    let rendered: Vec<String> = cells
        .iter()
        .map(|(coords, values)| {
            format!(
                "{{\"cell\":{},\"values\":{}}}",
                coords_json(labels, coords),
                values_json(values),
            )
        })
        .collect();
    format!("{{\"rows\":[{}]}}", rendered.join(","))
}

/// Render an [`UpdateStats`] as a JSON object.
pub fn update_stats_json(s: &UpdateStats, swaps: u64) -> String {
    format!(
        "{{\"rows_added\":{},\"rows_removed\":{},\"new_items\":{},\"new_units\":{},\"dropped_items\":{},\"dropped_units\":{},\"dirty_cells\":{},\"promoted_cells\":{},\"demoted_cells\":{},\"clean_cells\":{},\"swaps\":{}}}",
        s.rows_added,
        s.rows_removed,
        s.new_items,
        s.new_units,
        s.dropped_items,
        s.dropped_units,
        s.dirty_cells,
        s.promoted_cells,
        s.demoted_cells,
        s.clean_cells,
        swaps,
    )
}

/// Render the query-tier counters of one cube.
pub fn query_stats_json(s: &QueryStats) -> String {
    format!(
        "{{\"materialized\":{},\"cached\":{},\"explored\":{},\"breakdown_computed\":{},\"breakdown_cached\":{},\"total\":{}}}",
        s.materialized, s.cached, s.explored, s.breakdown_computed, s.breakdown_cached, s.total(),
    )
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

fn cell_query(handle: &CubeHandle, raw_query: &str, breakdown: bool) -> HttpResponse {
    let params = match query_params(raw_query) {
        Ok(p) => p,
        Err(e) => return bad_request(&e),
    };
    let (sa, ca) = match (
        pair_list(param(&params, "sa").unwrap_or("")),
        pair_list(param(&params, "ca").unwrap_or("")),
    ) {
        (Ok(sa), Ok(ca)) => (sa, ca),
        (Err(e), _) | (_, Err(e)) => return bad_request(&e),
    };
    let index = match param(&params, "index") {
        Some(raw) => match SegIndex::parse(raw) {
            Some(ix) => Some(ix),
            None => return bad_request(&format!("unknown index {raw:?}")),
        },
        None => None,
    };
    let significance = matches!(param(&params, "significance"), Some("1") | Some("true"));
    let engine = handle.engine();
    let coords = match engine.resolve(&as_refs(&sa), &as_refs(&ca)) {
        Ok(c) => c,
        Err(e) => return error_response(&e),
    };
    if breakdown {
        let rows = engine.unit_breakdown(&coords);
        HttpResponse::json(200, breakdown_json(engine.cube().labels(), &coords, &rows))
    } else {
        match engine.query(&coords) {
            Ok(values) => {
                let labels = engine.cube().labels();
                let values_body = match index {
                    Some(ix) => values_json_one(&values, ix),
                    None => values_json(&values),
                };
                let significance_body = if significance {
                    let rows = engine.unit_breakdown(&coords);
                    match significance_json(&rows, &values, index) {
                        Ok(body) => format!(",\"significance\":{body}"),
                        Err(e) => return error_response(&e),
                    }
                } else {
                    String::new()
                };
                HttpResponse::json(
                    200,
                    format!(
                        "{{\"cell\":{},\"describe\":\"{}\",\"values\":{}{}}}",
                        coords_json(labels, &coords),
                        json::escape(&labels.describe(&coords)),
                        values_body,
                        significance_body,
                    ),
                )
            }
            Err(e) => error_response(&e),
        }
    }
}

/// The `significance=1` block of a `/query` response: one permutation-test
/// object per tested index (the single `index=` when given, otherwise every
/// index the cell carries), computed on the cell's exact per-unit counts.
fn significance_json(
    breakdown: &[(u32, u64, u64)],
    values: &IndexValues,
    only: Option<SegIndex>,
) -> Result<String> {
    let counts = UnitCounts::from_pairs(breakdown.iter().map(|&(_, m, t)| (m, t)))?;
    let indexes: Vec<SegIndex> = match only {
        Some(ix) => vec![ix],
        None => SegIndex::ALL.into_iter().filter(|&ix| values.get(ix).is_some()).collect(),
    };
    let test = PermutationTest::default();
    let entries: Vec<String> = indexes
        .into_iter()
        .map(|ix| match test.run(ix, &counts) {
            Some(r) => format!(
                "{{\"index\":\"{}\",\"observed\":{},\"null_mean\":{},\"p_value\":{}}}",
                ix.name(),
                json::num(r.observed),
                json::num(r.null_mean),
                json::num(r.p_value),
            ),
            None => format!("{{\"index\":\"{}\",\"observed\":null}}", ix.name()),
        })
        .collect();
    Ok(format!("[{}]", entries.join(",")))
}

fn top_k(state: &State, handle: &CubeHandle, raw_query: &str) -> HttpResponse {
    let params = match query_params(raw_query) {
        Ok(p) => p,
        Err(e) => return bad_request(&e),
    };
    let raw_index = param(&params, "index").unwrap_or("dissimilarity");
    let index = match SegIndex::parse(raw_index) {
        Some(ix) => ix,
        None => return bad_request(&format!("unknown index {raw_index:?}")),
    };
    let (k, min_total, threads) = match (
        usize_param(&params, "k", 10),
        u64_param(&params, "min_total", 1),
        usize_param(&params, "threads", state.config.query_threads),
    ) {
        (Ok(k), Ok(m), Ok(t)) => (k, m, t),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return bad_request(&e),
    };
    let engine = handle.engine();
    match engine.top_k_batch(&[index], k, min_total, threads) {
        Ok(mut ranked) => {
            let (index, rows) = ranked.remove(0);
            HttpResponse::json(200, topk_json(engine.cube().labels(), index, &rows))
        }
        Err(e) => error_response(&e),
    }
}

fn slice(handle: &CubeHandle, raw_query: &str) -> HttpResponse {
    let params = match query_params(raw_query) {
        Ok(p) => p,
        Err(e) => return bad_request(&e),
    };
    let fixed = match pair_list(param(&params, "fixed").unwrap_or("")) {
        Ok(f) => f,
        Err(e) => return bad_request(&e),
    };
    let index = match param(&params, "index") {
        Some(raw) => match SegIndex::parse(raw) {
            Some(ix) => Some(ix),
            None => return bad_request(&format!("unknown index {raw:?}")),
        },
        None => None,
    };
    let engine = handle.engine();
    let cells = engine.slice(&as_refs(&fixed));
    let body = match index {
        Some(ix) => {
            let rendered: Vec<String> = cells
                .iter()
                .map(|(coords, values)| {
                    format!(
                        "{{\"cell\":{},\"values\":{}}}",
                        coords_json(engine.cube().labels(), coords),
                        values_json_one(values, ix),
                    )
                })
                .collect();
            format!("{{\"rows\":[{}]}}", rendered.join(","))
        }
        None => cells_json(engine.cube().labels(), &cells),
    };
    HttpResponse::json(200, body)
}

fn dice(handle: &CubeHandle, raw_query: &str) -> HttpResponse {
    let params = match query_params(raw_query) {
        Ok(p) => p,
        Err(e) => return bad_request(&e),
    };
    let attrs: Vec<&str> =
        param(&params, "attrs").unwrap_or("").split(',').filter(|a| !a.is_empty()).collect();
    let engine = handle.engine();
    let cells = engine.dice(&attrs);
    HttpResponse::json(200, cells_json(engine.cube().labels(), &cells))
}

fn cube_stats(handle: &CubeHandle) -> HttpResponse {
    let engine = handle.engine();
    HttpResponse::json(
        200,
        format!(
            "{{\"cells\":{},\"units\":{},\"swaps\":{},\"tiers\":{}}}",
            engine.cube().len(),
            engine.cube().num_units(),
            handle.swap_count(),
            query_stats_json(&handle.lifetime_stats()),
        ),
    )
}

fn list_cubes(state: &State) -> HttpResponse {
    let entries: Vec<String> = state
        .cubes
        .iter()
        .map(|(name, handle)| {
            let engine = handle.engine();
            format!(
                "{{\"name\":\"{}\",\"cells\":{},\"units\":{},\"swaps\":{}}}",
                json::escape(name),
                engine.cube().len(),
                engine.cube().num_units(),
                handle.swap_count(),
            )
        })
        .collect();
    HttpResponse::json(200, format!("{{\"cubes\":[{}]}}", entries.join(",")))
}

fn stats_response(state: &State) -> HttpResponse {
    let endpoints: Vec<String> = ENDPOINTS
        .iter()
        .zip(&state.endpoints)
        .map(|(name, s)| {
            format!(
                "\"{}\":{{\"requests\":{},\"errors\":{},\"micros\":{}}}",
                name,
                s.requests.load(Ordering::Relaxed),
                s.errors.load(Ordering::Relaxed),
                s.micros.load(Ordering::Relaxed),
            )
        })
        .collect();
    let cubes: Vec<String> = state
        .cubes
        .iter()
        .map(|(name, handle)| {
            format!(
                "\"{}\":{{\"swaps\":{},\"tiers\":{}}}",
                json::escape(name),
                handle.swap_count(),
                query_stats_json(&handle.lifetime_stats()),
            )
        })
        .collect();
    HttpResponse::json(
        200,
        format!(
            "{{\"uptime_us\":{},\"endpoints\":{{{}}},\"cubes\":{{{}}}}}",
            state.started.elapsed().as_micros(),
            endpoints.join(","),
            cubes.join(","),
        ),
    )
}

/// Decode the `POST /update` body:
/// `{"add":[{"unit":"u0","values":[["sex","F"],..]},..],
///   "remove":[..same shape..],"remove_tids":[3,7],"threads":4}`.
fn batch_from_json(doc: &Json) -> std::result::Result<(UpdateBatch, Option<usize>), String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("body must be a JSON object".into());
    }
    if let Json::Obj(members) = doc {
        for (key, _) in members {
            if !matches!(key.as_str(), "add" | "remove" | "remove_tids" | "threads") {
                return Err(format!("unknown field {key:?}"));
            }
        }
    }
    let mut batch = UpdateBatch::new();
    for (field, removing) in [("add", false), ("remove", true)] {
        let Some(rows) = doc.get(field) else { continue };
        let rows = rows.as_arr().ok_or_else(|| format!("{field:?} must be an array"))?;
        for row in rows {
            let unit = row
                .get("unit")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{field:?} row missing string \"unit\""))?;
            let values = row
                .get("values")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{field:?} row missing array \"values\""))?;
            let mut pairs: Vec<(String, String)> = Vec::with_capacity(values.len());
            for pair in values {
                match pair.as_arr() {
                    Some([a, v]) => match (a.as_str(), v.as_str()) {
                        (Some(a), Some(v)) => pairs.push((a.to_string(), v.to_string())),
                        _ => return Err("values entries must be [\"attr\",\"value\"]".into()),
                    },
                    _ => return Err("values entries must be [\"attr\",\"value\"]".into()),
                }
            }
            if removing {
                batch.remove_row(&pairs, unit);
            } else {
                batch.add_row(&pairs, unit);
            }
        }
    }
    if let Some(tids) = doc.get("remove_tids") {
        let tids = tids.as_arr().ok_or("\"remove_tids\" must be an array")?;
        for tid in tids {
            let tid = tid
                .as_u64()
                .and_then(|t| u32::try_from(t).ok())
                .ok_or("\"remove_tids\" entries must be u32")?;
            batch.remove_tid(tid);
        }
    }
    let threads = match doc.get("threads") {
        None => None,
        Some(t) => Some(
            t.as_u64()
                .and_then(|t| usize::try_from(t).ok())
                .filter(|&t| t >= 1)
                .ok_or("\"threads\" must be a positive integer")?,
        ),
    };
    Ok((batch, threads))
}

fn update(state: &State, handle: &CubeHandle, body: &[u8]) -> HttpResponse {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return bad_request("body is not valid UTF-8"),
    };
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return bad_request(&format!("bad JSON: {e}")),
    };
    let (batch, threads) = match batch_from_json(&doc) {
        Ok(b) => b,
        Err(e) => return bad_request(&e),
    };
    match handle.update(&batch, threads.unwrap_or(state.config.update_threads)) {
        Ok(stats) => HttpResponse::json(200, update_stats_json(&stats, handle.swap_count())),
        Err(e) => error_response(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_string_decoding() {
        let params = query_params("sa=sex%3DF&ca=region%3Dnorth,ages%3Dold&k=5").unwrap();
        assert_eq!(param(&params, "sa"), Some("sex=F"));
        assert_eq!(
            pair_list(param(&params, "ca").unwrap()).unwrap(),
            vec![("region".into(), "north".into()), ("ages".into(), "old".into())]
        );
        assert_eq!(usize_param(&params, "k", 10).unwrap(), 5);
        assert_eq!(usize_param(&params, "missing", 10).unwrap(), 10);

        assert!(query_params("a=1&a=2").is_err(), "duplicates rejected");
        assert!(query_params("bad=%zz").is_err(), "bad escapes rejected");
        assert!(pair_list("novalue").is_err());
        assert!(pair_list("=v").is_err());
        assert!(usize_param(&[("k".into(), "x".into())], "k", 1).is_err());
    }

    #[test]
    fn update_body_decoding() {
        let doc = Json::parse(
            r#"{"add":[{"unit":"u9","values":[["sex","F"]]}],
                "remove":[{"unit":"u0","values":[["sex","M"]]}],
                "remove_tids":[7],"threads":2}"#,
        )
        .unwrap();
        let (batch, threads) = batch_from_json(&doc).unwrap();
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.num_removals(), 2);
        assert_eq!(threads, Some(2));

        for bad in [
            r#"[]"#,
            r#"{"unknown":1}"#,
            r#"{"add":{}}"#,
            r#"{"add":[{"values":[]}]}"#,
            r#"{"add":[{"unit":"u","values":[["only-one"]]}]}"#,
            r#"{"remove_tids":[-1]}"#,
            r#"{"remove_tids":[4294967296]}"#,
            r#"{"threads":0}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(batch_from_json(&doc).is_err(), "{bad} should fail");
        }
    }
}
