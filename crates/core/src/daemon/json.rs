//! Hardened JSON for the serving daemon: a depth-capped, allocation-capped
//! parser for untrusted request bodies, and escape/number helpers for
//! building responses.
//!
//! The parser follows the wire-hardening discipline of the snapshot loader
//! and `minihttp`: input size is already bounded by the HTTP body cap,
//! nesting depth is bounded here, no buffer is preallocated from claimed
//! sizes, and every malformed input yields an `Err(String)` — never a
//! panic. Numbers keep their raw text so a value can round-trip bit-
//! identically: Rust's `{}` formatting of `f64` is shortest-round-trip, so
//! `format!("{x}").parse::<f64>()` recovers exactly `x`'s bits.

/// Maximum nesting depth accepted from a request body.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text (see module docs).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys are kept verbatim).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document from `text`.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object (first occurrence), if any.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64` (bit-identical to the producer's value when the
    /// producer used shortest-round-trip formatting), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match bytes.get(*pos) {
                    Some(b'"') => parse_string(bytes, pos)?,
                    _ => return Err(format!("expected object key at offset {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    // Validate the shape by parsing; the raw text is what we keep.
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("invalid number at offset {start}"));
    }
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = parse_hex4(bytes, *pos + 1)?;
                        if (0xd800..0xdc00).contains(&cp) {
                            // High surrogate: require a \uXXXX low surrogate.
                            if bytes.get(*pos + 5) != Some(&b'\\')
                                || bytes.get(*pos + 6) != Some(&b'u')
                            {
                                return Err("lone high surrogate".into());
                            }
                            let lo = parse_hex4(bytes, *pos + 7)?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                            out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                            *pos += 10;
                        } else {
                            out.push(char::from_u32(cp).ok_or("lone low surrogate")?);
                            *pos += 4;
                        }
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("control byte in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid; find the char at this byte offset).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let mut v = 0u32;
    for i in 0..4 {
        let d = bytes
            .get(at + i)
            .and_then(|&b| (b as char).to_digit(16))
            .ok_or("invalid \\u escape")?;
        v = (v << 4) | d;
    }
    Ok(v)
}

/// Escape `s` as the contents of a JSON string (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for a response: shortest-round-trip text for finite
/// values (so the bits survive a JSON round trip), `null` otherwise.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Format an optional `f64` (`None` → `null`).
pub fn opt_num(x: Option<f64>) -> String {
    match x {
        Some(v) => num(v),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_update_shape() {
        let j = Json::parse(
            r#"{"add":[{"unit":"u0","values":[["sex","F"],["region","north"]]}],
                "remove_tids":[1,2],"threads":4}"#,
        )
        .unwrap();
        let add = j.get("add").unwrap().as_arr().unwrap();
        assert_eq!(add.len(), 1);
        assert_eq!(add[0].get("unit").unwrap().as_str(), Some("u0"));
        let values = add[0].get("values").unwrap().as_arr().unwrap();
        assert_eq!(values[1].as_arr().unwrap()[1].as_str(), Some("north"));
        let tids: Vec<u64> = j
            .get("remove_tids")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(tids, vec![1, 2]);
        assert_eq!(j.get("threads").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn numbers_round_trip_bit_identically() {
        for x in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 123456.789e-12] {
            let text = num(x);
            let j = Json::parse(&text).unwrap();
            assert_eq!(j.as_f64().unwrap().to_bits(), x.to_bits(), "{text}");
        }
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\tnl\nbs\\", "unicode é 漢", "ctl\u{1}"] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(s), "{doc:?}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""\u0041\u00e9""#).unwrap().as_str(), Some("Aé"));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00x""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn depth_is_capped() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&deep).unwrap_err().contains("deep"));
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn malformed_documents_error_not_panic() {
        for doc in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "+",
            "-",
            "1..2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\u{0}",
            "[1] trailing",
            "{\"a\":1,}",
            "\"\\u12\"",
            "NaN",
            "Infinity",
        ] {
            assert!(Json::parse(doc).is_err(), "{doc:?} should fail");
        }
    }
}
