//! Pipeline timing and size statistics.
//!
//! The demo discusses "computational efficiency challenges and solutions";
//! every run reports where the time went so the scalability experiments
//! (E11) can decompose cost by stage.

use std::time::Duration;

/// Wall-clock time per pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Bipartite projection (GraphBuilder).
    pub projection: Duration,
    /// Clustering (GraphClustering).
    pub clustering: Duration,
    /// Final-table join and encoding (TableBuilder).
    pub join: Duration,
    /// Cube construction (SegregationDataCubeBuilder).
    pub cube: Duration,
}

impl StageTimings {
    /// Total time across stages.
    pub fn total(&self) -> Duration {
        self.projection + self.clustering + self.join + self.cube
    }
}

/// Size statistics of one pipeline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Individuals in the input.
    pub n_individuals: usize,
    /// Groups in the input.
    pub n_groups: usize,
    /// Membership edges.
    pub n_memberships: usize,
    /// Rows of the final table.
    pub n_rows: usize,
    /// Organizational units.
    pub n_units: usize,
    /// Materialized cube cells.
    pub n_cells: usize,
    /// Isolated nodes reported by the projection.
    pub n_isolated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_stages() {
        let t = StageTimings {
            projection: Duration::from_millis(1),
            clustering: Duration::from_millis(2),
            join: Duration::from_millis(3),
            cube: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }
}
