//! A typed, step-guided front-end — the programmatic counterpart of the
//! SCube standalone wizard (Fig. 4).
//!
//! The GUI wizard walks a non-technical user through: load the four inputs,
//! pick a unit strategy and parameters, run, then open the reports. The
//! [`Wizard`] builder encodes the same steps as a fluent API with the same
//! validation at each step, ending in [`Wizard::run`] (cube in memory) or
//! [`Wizard::run_and_write`] (reports on disk).
//!
//! ```no_run
//! use scube::wizard::Wizard;
//! use scube::table_builder::UnitStrategy;
//! use scube::inputs::{GroupsSpec, IndividualsSpec, MembershipSpec};
//!
//! let result = Wizard::new()
//!     .individuals_csv("directors.csv", IndividualsSpec::new("id").sa("gender").sa("age"))
//!     .groups_csv("companies.csv", GroupsSpec::new("id").ca("sector"))
//!     .membership_csv("boards.csv", MembershipSpec::new("director", "company"))
//!     .units(UnitStrategy::GroupAttribute("sector".into()))
//!     .min_support(50)
//!     .run_and_write("out/")?;
//! # Ok::<(), scube_common::ScubeError>(())
//! ```

use std::path::{Path, PathBuf};

use scube_common::{Result, ScubeError};
use scube_cube::{CubeBuilder, Materialize};
use scube_data::Relation;

use crate::inputs::{Dataset, GroupsSpec, IndividualsSpec, MembershipSpec};
use crate::pipeline::{run, run_snapshots, ScubeConfig, ScubeResult};
use crate::table_builder::UnitStrategy;
use crate::visualizer::Visualizer;

enum Source {
    Path(PathBuf),
    InMemory(Relation),
}

impl Source {
    fn load(&self, what: &str) -> Result<Relation> {
        match self {
            Source::Path(p) => Relation::read_csv_path(p),
            Source::InMemory(r) => Ok(r.clone()),
            // Distinguishing the two in errors is not needed; Relation
            // reports the path itself.
        }
        .map_err(|e| match e {
            ScubeError::Schema(msg) => ScubeError::Schema(format!("{what}: {msg}")),
            other => other,
        })
    }
}

/// Fluent pipeline front-end; see the module docs.
pub struct Wizard {
    individuals: Option<(Source, IndividualsSpec)>,
    groups: Option<(Source, GroupsSpec)>,
    membership: Option<(Source, MembershipSpec)>,
    dates: Vec<i64>,
    units: Option<UnitStrategy>,
    min_shared: u32,
    cube: CubeBuilder,
}

impl Default for Wizard {
    fn default() -> Self {
        Self::new()
    }
}

impl Wizard {
    /// Start an empty wizard.
    pub fn new() -> Self {
        Wizard {
            individuals: None,
            groups: None,
            membership: None,
            dates: Vec::new(),
            units: None,
            min_shared: 1,
            cube: CubeBuilder::new(),
        }
    }

    /// Step 1: the `individuals` input from a CSV file.
    pub fn individuals_csv(mut self, path: impl AsRef<Path>, spec: IndividualsSpec) -> Self {
        self.individuals = Some((Source::Path(path.as_ref().to_path_buf()), spec));
        self
    }

    /// Step 1 (in-memory variant).
    pub fn individuals(mut self, rel: Relation, spec: IndividualsSpec) -> Self {
        self.individuals = Some((Source::InMemory(rel), spec));
        self
    }

    /// Step 2: the `groups` input from a CSV file.
    pub fn groups_csv(mut self, path: impl AsRef<Path>, spec: GroupsSpec) -> Self {
        self.groups = Some((Source::Path(path.as_ref().to_path_buf()), spec));
        self
    }

    /// Step 2 (in-memory variant).
    pub fn groups(mut self, rel: Relation, spec: GroupsSpec) -> Self {
        self.groups = Some((Source::InMemory(rel), spec));
        self
    }

    /// Step 3: the `membership` input from a CSV file.
    pub fn membership_csv(mut self, path: impl AsRef<Path>, spec: MembershipSpec) -> Self {
        self.membership = Some((Source::Path(path.as_ref().to_path_buf()), spec));
        self
    }

    /// Step 3 (in-memory variant).
    pub fn membership(mut self, rel: Relation, spec: MembershipSpec) -> Self {
        self.membership = Some((Source::InMemory(rel), spec));
        self
    }

    /// Step 4 (optional): snapshot dates for temporal analysis.
    pub fn dates(mut self, dates: Vec<i64>) -> Self {
        self.dates = dates;
        self
    }

    /// Step 5: the unit strategy (scenario).
    pub fn units(mut self, units: UnitStrategy) -> Self {
        self.units = Some(units);
        self
    }

    /// Projection threshold: minimum shared individuals/groups per edge.
    pub fn min_shared(mut self, w: u32) -> Self {
        self.min_shared = w;
        self
    }

    /// Cube parameter: minimum cell population.
    pub fn min_support(mut self, s: u64) -> Self {
        self.cube = self.cube.min_support(s);
        self
    }

    /// Cube parameter: materialization strategy.
    pub fn materialize(mut self, m: Materialize) -> Self {
        self.cube = self.cube.materialize(m);
        self
    }

    /// Cube parameter: parallel histogram evaluation.
    pub fn parallel(mut self, on: bool) -> Self {
        self.cube = self.cube.parallel(on);
        self
    }

    /// Cube parameter: the measure subset to fold per cell (defaults to
    /// the full six-index suite).
    pub fn measures(mut self, measures: scube_segindex::MeasureSet) -> Self {
        self.cube = self.cube.measures(measures);
        self
    }

    /// Assemble and validate the dataset (steps 1–4).
    pub fn dataset(&self) -> Result<Dataset> {
        let (ind_src, ind_spec) = self.individuals.as_ref().ok_or_else(|| {
            ScubeError::InvalidParameter("wizard: individuals input missing".into())
        })?;
        let (grp_src, grp_spec) = self
            .groups
            .as_ref()
            .ok_or_else(|| ScubeError::InvalidParameter("wizard: groups input missing".into()))?;
        let (mem_src, mem_spec) = self.membership.as_ref().ok_or_else(|| {
            ScubeError::InvalidParameter("wizard: membership input missing".into())
        })?;
        Dataset::new(
            ind_src.load("individuals")?,
            ind_spec.clone(),
            grp_src.load("groups")?,
            grp_spec.clone(),
            &mem_src.load("membership")?,
            mem_spec,
            self.dates.clone(),
        )
    }

    fn config(&self) -> Result<ScubeConfig> {
        let units = self
            .units
            .clone()
            .ok_or_else(|| ScubeError::InvalidParameter("wizard: unit strategy missing".into()))?;
        Ok(ScubeConfig { units, min_shared: self.min_shared, cube: self.cube })
    }

    /// Final step: run the pipeline.
    pub fn run(&self) -> Result<ScubeResult> {
        run(&self.dataset()?, &self.config()?)
    }

    /// Final step (temporal): one run per snapshot date.
    pub fn run_snapshots(&self) -> Result<Vec<(i64, ScubeResult)>> {
        run_snapshots(&self.dataset()?, &self.config()?)
    }

    /// Final step: run and write the report directory (the wizard's
    /// "finish and open the output" action).
    pub fn run_and_write(&self, out_dir: impl AsRef<Path>) -> Result<ScubeResult> {
        let result = self.run()?;
        Visualizer::new(out_dir.as_ref()).write_all(&result)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_assignment::ClusteringMethod;

    fn rel(cols: &[&str], rows: &[&[&str]]) -> Relation {
        let mut r = Relation::new(cols.iter().map(|s| s.to_string()).collect()).unwrap();
        for row in rows {
            r.push_row(row.iter().map(|s| s.to_string()).collect()).unwrap();
        }
        r
    }

    fn wizard() -> Wizard {
        Wizard::new()
            .individuals(
                rel(&["id", "gender"], &[&["d1", "F"], &["d2", "M"]]),
                IndividualsSpec::new("id").sa("gender"),
            )
            .groups(rel(&["id", "sector"], &[&["c1", "edu"]]), GroupsSpec::new("id").ca("sector"))
            .membership(
                rel(&["dir", "comp"], &[&["d1", "c1"], &["d2", "c1"]]),
                MembershipSpec::new("dir", "comp"),
            )
    }

    #[test]
    fn runs_when_complete() {
        let result = wizard()
            .units(UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents))
            .run()
            .unwrap();
        assert!(!result.cube.is_empty());
        assert_eq!(result.stats.n_individuals, 2);
    }

    #[test]
    fn missing_steps_reported() {
        let err = Wizard::new().run().unwrap_err();
        assert!(err.to_string().contains("individuals input missing"));
        let err = wizard().run().unwrap_err();
        assert!(err.to_string().contains("unit strategy missing"));
    }

    #[test]
    fn run_and_write_produces_reports() {
        let dir = std::env::temp_dir().join(format!("scube_wizard_test_{}", std::process::id()));
        let result = wizard()
            .units(UnitStrategy::GroupAttribute("sector".into()))
            .run_and_write(&dir)
            .unwrap();
        assert!(!result.cube.is_empty());
        assert!(dir.join("cube.csv").exists());
        assert!(dir.join("summary.md").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_file_sources_work() {
        let dir = std::env::temp_dir().join(format!("scube_wizard_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        rel(&["id", "gender"], &[&["d1", "F"], &["d2", "M"]])
            .write_csv_path(dir.join("ind.csv"))
            .unwrap();
        rel(&["id", "sector"], &[&["c1", "edu"]]).write_csv_path(dir.join("grp.csv")).unwrap();
        rel(&["dir", "comp"], &[&["d1", "c1"], &["d2", "c1"]])
            .write_csv_path(dir.join("mem.csv"))
            .unwrap();
        let result = Wizard::new()
            .individuals_csv(dir.join("ind.csv"), IndividualsSpec::new("id").sa("gender"))
            .groups_csv(dir.join("grp.csv"), GroupsSpec::new("id").ca("sector"))
            .membership_csv(dir.join("mem.csv"), MembershipSpec::new("dir", "comp"))
            .units(UnitStrategy::GroupAttribute("sector".into()))
            .run()
            .unwrap();
        assert_eq!(result.stats.n_individuals, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
