//! The end-to-end SCube pipeline (Fig. 2 and Fig. 3 left-top).
//!
//! `inputs → GraphBuilder → GraphClustering → TableBuilder →
//! SegregationDataCubeBuilder → Visualizer`, with the pre-processing
//! stages skipped when data already carries a `unitID` (tabular scenario).

use std::path::Path;
use std::time::Instant;

use scube_common::Result;
use scube_cube::{CubeBuilder, CubeSnapshot, SegregationCube, UpdateBatch, UpdateStats};
use scube_data::{ChunkedBuildStats, FinalTableSpec, Relation, TransactionDb, VerticalDb};
use scube_graph::Clustering;

use crate::inputs::Dataset;
use crate::stats::{RunStats, StageTimings};
use crate::table_builder::{build_final_table, UnitStrategy};

/// Configuration of one pipeline run.
#[derive(Debug, Clone)]
pub struct ScubeConfig {
    /// Unit strategy (selects the scenario).
    pub units: UnitStrategy,
    /// Projection weight threshold (minimum shared individuals/groups).
    pub min_shared: u32,
    /// Cube-construction parameters.
    pub cube: CubeBuilder,
}

impl ScubeConfig {
    /// Configuration for a given unit strategy with defaults elsewhere.
    pub fn new(units: UnitStrategy) -> Self {
        ScubeConfig { units, min_shared: 1, cube: CubeBuilder::new() }
    }

    /// Set the projection threshold.
    pub fn min_shared(mut self, w: u32) -> Self {
        self.min_shared = w;
        self
    }

    /// Set the cube builder (min-support, materialization, …).
    pub fn cube(mut self, cube: CubeBuilder) -> Self {
        self.cube = cube;
        self
    }
}

/// Everything one pipeline run produces.
#[derive(Debug)]
pub struct ScubeResult {
    /// The segregation data cube.
    pub cube: SegregationCube,
    /// The encoded final table it was built from.
    pub final_table: TransactionDb,
    /// The vertical (item → tidset) view the cube was mined from, kept so
    /// [`snapshot`] and explorers never rebuild it.
    pub vertical: VerticalDb,
    /// The cube builder the run used, kept so [`snapshot`] records the
    /// build configuration (materialization, Atkinson parameter) —
    /// without it, later `scube update`s would maintain the cube under
    /// the wrong parameters.
    pub builder: CubeBuilder,
    /// The clustering behind the units (graph scenarios).
    pub clustering: Option<Clustering>,
    /// Isolated projected nodes.
    pub isolated: Vec<u32>,
    /// Stage timings.
    pub timings: StageTimings,
    /// Size statistics.
    pub stats: RunStats,
}

/// Run the full pipeline over a dataset.
pub fn run(dataset: &Dataset, config: &ScubeConfig) -> Result<ScubeResult> {
    let ft = build_final_table(dataset, &config.units, config.min_shared)?;
    let cube_start = Instant::now();
    let vertical: VerticalDb = VerticalDb::build(&ft.db);
    let cube = config.cube.build_from_vertical(&ft.db, &vertical)?;
    let mut timings = ft.timings;
    timings.cube = cube_start.elapsed();
    let stats = RunStats {
        n_individuals: dataset.num_individuals(),
        n_groups: dataset.num_groups(),
        n_memberships: dataset.bipartite.memberships().len(),
        n_rows: ft.db.len(),
        n_units: ft.db.num_units(),
        n_cells: cube.len(),
        n_isolated: ft.isolated.len(),
    };
    Ok(ScubeResult {
        cube,
        final_table: ft.db,
        vertical,
        builder: config.cube,
        clustering: ft.clustering,
        isolated: ft.isolated,
        timings,
        stats,
    })
}

/// Run on data that already carries a `unitID` column (the pipeline's
/// shortcut path: "the pre-processing steps … do not need to be performed").
pub fn run_final_table(
    table: &Relation,
    spec: &FinalTableSpec,
    cube: &CubeBuilder,
) -> Result<ScubeResult> {
    let join_start = Instant::now();
    let db = spec.encode(table)?;
    let join = join_start.elapsed();
    let cube_start = Instant::now();
    let vertical: VerticalDb = VerticalDb::build(&db);
    let built = cube.build_from_vertical(&db, &vertical)?;
    let timings = StageTimings { join, cube: cube_start.elapsed(), ..Default::default() };
    let stats = RunStats {
        n_individuals: table.len(),
        n_rows: db.len(),
        n_units: db.num_units(),
        n_cells: built.len(),
        ..Default::default()
    };
    Ok(ScubeResult {
        cube: built,
        final_table: db,
        vertical,
        builder: *cube,
        clustering: None,
        isolated: Vec::new(),
        timings,
        stats,
    })
}

/// As [`run_final_table`], streaming the table straight off a CSV file:
/// records pass one at a time through [`scube_data::CsvRows`] into the
/// dictionary encoder, so peak staging memory is one record — the string
/// table is never resident as a whole. This is the ingest path for final
/// tables of millions of rows (`scube save --final-table big.csv`).
pub fn run_final_table_csv(
    path: impl AsRef<Path>,
    spec: &FinalTableSpec,
    cube: &CubeBuilder,
) -> Result<ScubeResult> {
    let join_start = Instant::now();
    let db = spec.load_csv(path)?;
    let join = join_start.elapsed();
    let cube_start = Instant::now();
    let vertical: VerticalDb = VerticalDb::build(&db);
    let built = cube.build_from_vertical(&db, &vertical)?;
    let timings = StageTimings { join, cube: cube_start.elapsed(), ..Default::default() };
    let stats = RunStats {
        n_individuals: db.len(),
        n_rows: db.len(),
        n_units: db.num_units(),
        n_cells: built.len(),
        ..Default::default()
    };
    Ok(ScubeResult {
        cube: built,
        final_table: db,
        vertical,
        builder: *cube,
        clustering: None,
        isolated: Vec::new(),
        timings,
        stats,
    })
}

/// Everything a chunked (bounded-memory) build produces. Unlike
/// [`ScubeResult`] there is no `final_table`: the horizontal
/// [`TransactionDb`] is never materialized on this path — only the
/// vertical postings, the cube, and the label metadata exist, so peak
/// memory is bounded by the *output*, not the input table.
#[derive(Debug)]
pub struct ChunkedBuild {
    /// The segregation data cube.
    pub cube: SegregationCube,
    /// The vertical (item → tidset) view, grown chunk by chunk.
    pub vertical: VerticalDb,
    /// The cube builder the run used (recorded into snapshots).
    pub builder: CubeBuilder,
    /// Chunk accounting: rows, flushes, peak staged rows/items.
    pub chunk_stats: ChunkedBuildStats,
    /// Stage timings.
    pub timings: StageTimings,
    /// Size statistics.
    pub stats: RunStats,
}

/// As [`run_final_table_csv`], but through the chunked builder: rows
/// stream off the CSV in tid order, are interned and staged at most
/// `chunk_rows` at a time, and each full chunk is folded into the
/// vertical postings by tail-append (`Posting::append_sorted`).
/// The horizontal table never exists; peak memory is the postings plus one
/// chunk. The resulting cube — and any snapshot saved from it — is
/// **byte-identical** to the resident build's on the same table, because
/// both paths intern through the same code in the same first-occurrence
/// order and tids arrive pre-sorted.
pub fn run_final_table_csv_chunked(
    path: impl AsRef<Path>,
    spec: &FinalTableSpec,
    cube: &CubeBuilder,
    chunk_rows: usize,
) -> Result<ChunkedBuild> {
    let join_start = Instant::now();
    let (vertical, meta, chunk_stats): (VerticalDb, _, _) =
        spec.load_csv_chunked(path, chunk_rows)?;
    let join = join_start.elapsed();
    let cube_start = Instant::now();
    let built = cube.build_streaming(&meta, &vertical)?;
    let timings = StageTimings { join, cube: cube_start.elapsed(), ..Default::default() };
    let stats = RunStats {
        n_individuals: vertical.num_transactions() as usize,
        n_rows: vertical.num_transactions() as usize,
        n_units: meta.num_units(),
        n_cells: built.len(),
        ..Default::default()
    };
    Ok(ChunkedBuild { cube: built, vertical, builder: *cube, chunk_stats, timings, stats })
}

/// As [`snapshot`], for a chunked build. Byte-identical to the snapshot of
/// the equivalent resident run.
pub fn snapshot_chunked(result: &ChunkedBuild) -> Result<CubeSnapshot> {
    let config = result.builder.config();
    Ok(CubeSnapshot::new(result.cube.clone(), result.vertical.clone())?.with_build_config(
        config.materialize,
        config.atkinson_b,
        config.measures,
    ))
}

/// Package a finished run as a persistable [`CubeSnapshot`]: the cube plus
/// the vertical postings it was mined from (already built by [`run`] — not
/// reconstructed), ready for `scube save` /
/// [`scube_cube::CubeQueryEngine`] serving without re-mining. The run's
/// build configuration is recorded in the snapshot, so later updates
/// maintain the cube under the same materialization and Atkinson
/// parameter.
pub fn snapshot(result: &ScubeResult) -> Result<CubeSnapshot> {
    let config = result.builder.config();
    Ok(CubeSnapshot::new(result.cube.clone(), result.vertical.clone())?.with_build_config(
        config.materialize,
        config.atkinson_b,
        config.measures,
    ))
}

/// Incremental maintenance: fold a batch of appended rows and retractions
/// into a built snapshot in place — postings extended at their tails (or
/// shrunk), newly-frequent itemsets promoted, below-threshold cells
/// demoted, exactly the dirty cells re-evaluated. Bit-identical to
/// re-running the pipeline on the edited data, at a fraction of the cost
/// (see `scube_cube::update`).
pub fn update(snapshot: &mut CubeSnapshot, batch: &UpdateBatch) -> Result<UpdateStats> {
    snapshot.apply_update(batch)
}

/// As [`update`], fanning dirty-cell re-evaluation over up to `threads`
/// scoped worker threads — bit-identical to the serial form.
pub fn update_threads(
    snapshot: &mut CubeSnapshot,
    batch: &UpdateBatch,
    threads: usize,
) -> Result<UpdateStats> {
    snapshot.apply_update_threads(batch, threads)
}

/// The `scube update` verb: load a snapshot file, fold final-table-shaped
/// relations of appended (`add`) and retracted (`remove`, matched exactly)
/// rows into it (`unit_column` names the unit id column), and save the
/// patched snapshot back in the current format (v4). Returns the update
/// stats; the save is atomic (temp file + rename), so the file holds the
/// previous snapshot until the update fully succeeds.
pub fn update_snapshot_file(
    path: impl AsRef<Path>,
    add: Option<&Relation>,
    remove: Option<&Relation>,
    unit_column: &str,
    threads: usize,
) -> Result<UpdateStats> {
    let path = path.as_ref();
    let mut snapshot: CubeSnapshot = CubeSnapshot::load(path)?;
    let mut batch = match add {
        Some(rows) => UpdateBatch::from_relation(rows, snapshot.cube().labels(), unit_column)?,
        None => UpdateBatch::new(),
    };
    if let Some(rows) = remove {
        batch.remove_relation(rows, snapshot.cube().labels(), unit_column)?;
    }
    let stats = snapshot.apply_update_threads(&batch, threads)?;
    snapshot.save(path)?;
    Ok(stats)
}

/// Temporal analysis: run the pipeline once per snapshot date.
///
/// Returns `(date, result)` pairs in date order. Uses the dataset's own
/// `dates` input (Fig. 2).
pub fn run_snapshots(dataset: &Dataset, config: &ScubeConfig) -> Result<Vec<(i64, ScubeResult)>> {
    let mut dates = dataset.dates.clone();
    dates.sort_unstable();
    dates.dedup();
    let mut out = Vec::with_capacity(dates.len());
    for date in dates {
        let snap = dataset.snapshot(date);
        out.push((date, run(&snap, config)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::{GroupsSpec, IndividualsSpec, MembershipSpec};
    use crate::unit_assignment::ClusteringMethod;
    use scube_segindex::SegIndex;

    fn rel(cols: &[&str], rows: &[&[&str]]) -> Relation {
        let mut r = Relation::new(cols.iter().map(|s| s.to_string()).collect()).unwrap();
        for row in rows {
            r.push_row(row.iter().map(|s| s.to_string()).collect()).unwrap();
        }
        r
    }

    fn dataset() -> Dataset {
        // Two "industries": companies c1,c2 (edu) interlocked through d1;
        // c3 (agri) separate. Women concentrate in edu boards.
        let individuals = rel(
            &["id", "gender"],
            &[&["d1", "F"], &["d2", "F"], &["d3", "F"], &["d4", "M"], &["d5", "M"], &["d6", "M"]],
        );
        let groups = rel(&["id", "sector"], &[&["c1", "edu"], &["c2", "edu"], &["c3", "agri"]]);
        let membership = rel(
            &["dir", "comp", "from", "to"],
            &[
                &["d1", "c1", "2000", "2010"],
                &["d1", "c2", "2000", "2010"],
                &["d2", "c1", "2000", "2004"],
                &["d3", "c2", "2005", "2010"],
                &["d4", "c3", "2000", "2010"],
                &["d5", "c3", "2000", "2010"],
                &["d6", "c3", "2005", "2010"],
            ],
        );
        Dataset::new(
            individuals,
            IndividualsSpec::new("id").sa("gender"),
            groups,
            GroupsSpec::new("id").ca("sector"),
            &membership,
            &MembershipSpec::new("dir", "comp").with_interval("from", "to"),
            vec![2002, 2006],
        )
        .unwrap()
    }

    #[test]
    fn scenario3_end_to_end() {
        let d = dataset();
        let config =
            ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents));
        let result = run(&d, &config).unwrap();
        // Units: {c1,c2} and {c3}. All edu directors are F, all agri are M
        // → complete segregation for gender=F at the * context.
        assert_eq!(result.final_table.num_units(), 2);
        let v = result.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
        assert_eq!(v.dissimilarity, Some(1.0));
        assert_eq!(v.isolation, Some(1.0));
        assert_eq!(result.stats.n_cells, result.cube.len());
        assert!(result.stats.n_rows >= 6);
    }

    #[test]
    fn scenario1_group_attribute_end_to_end() {
        let d = dataset();
        let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()));
        let result = run(&d, &config).unwrap();
        assert_eq!(result.final_table.num_units(), 2); // edu, agri
        let v = result.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
        assert_eq!(v.dissimilarity, Some(1.0));
    }

    #[test]
    fn tabular_shortcut_equals_group_attribute_path() {
        // Scenario 1 via the shortcut: the final table built by hand.
        let table = rel(
            &["gender", "unitID"],
            &[
                &["F", "edu"],
                &["F", "edu"],
                &["F", "edu"],
                &["M", "agri"],
                &["M", "agri"],
                &["M", "agri"],
            ],
        );
        let spec = FinalTableSpec::new("unitID").sa("gender");
        let result = run_final_table(&table, &spec, &CubeBuilder::new()).unwrap();
        let v = result.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
        assert_eq!(v.dissimilarity, Some(1.0));
        assert_eq!(result.stats.n_units, 2);
    }

    #[test]
    fn snapshots_follow_membership_intervals() {
        let d = dataset();
        let config =
            ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents));
        let snaps = run_snapshots(&d, &config).unwrap();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, 2002);
        // In 2002: d1,d2 active in edu, d4,d5 in agri (d3,d6 not yet).
        assert_eq!(snaps[0].1.stats.n_rows, 4);
        // In 2006: d1,d3 in edu; d4,d5,d6 in agri.
        assert_eq!(snaps[1].0, 2006);
        assert_eq!(snaps[1].1.stats.n_rows, 5);
        // Complete segregation persists in both snapshots.
        for (_, r) in &snaps {
            let v = r.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
            assert_eq!(v.get(SegIndex::Dissimilarity), Some(1.0));
        }
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let d = dataset();
        let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()));
        let result = run(&d, &config).unwrap();
        let snap = snapshot(&result).unwrap();
        let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(loaded.cube(), &result.cube);
        let mut engine = scube_cube::CubeQueryEngine::new(loaded);
        let coords = result.cube.coords_by_names(&[("gender", "F")], &[]).unwrap();
        assert_eq!(engine.query(&coords).unwrap().dissimilarity, Some(1.0));
    }

    #[test]
    fn snapshot_records_the_run_build_config() {
        use scube_cube::{Materialize, UpdateBatch};
        let d = dataset();
        let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
            .cube(CubeBuilder::new().materialize(Materialize::ClosedOnly).atkinson_b(0.25));
        let result = run(&d, &config).unwrap();
        let snap = snapshot(&result).unwrap();
        // The save path must carry the run's configuration, or later
        // updates would maintain a closed cube under AllFrequent rules
        // (and re-evaluate with the wrong Atkinson parameter).
        assert_eq!(snap.materialize(), Materialize::ClosedOnly);
        assert_eq!(snap.atkinson_b(), 0.25);
        // And a snapshot-path update matches re-running the pipeline on
        // the concatenated final table.
        let full_rel = crate::table_builder::final_table_relation(&result.final_table);
        let mut updated = snap;
        let batch = UpdateBatch::from_relation(
            &full_rel.slice_rows(0..2),
            updated.cube().labels(),
            "unitID",
        )
        .unwrap();
        updated.apply_update(&batch).unwrap();
        assert!(updated.cube().len() >= result.cube.len());
    }

    #[test]
    fn timings_are_populated() {
        let d = dataset();
        let config =
            ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents));
        let result = run(&d, &config).unwrap();
        assert!(result.timings.total() > std::time::Duration::ZERO);
    }
}
