//! The `scubed` serving daemon — resident cubes answering over HTTP.
//!
//! ```text
//! scubed --snapshot main=cube.scube [--snapshot other=other.scube ...] \
//!        [--listen 127.0.0.1:7007] [--workers 4] [--shards 16] \
//!        [--cache 4096] [--update-threads 4] [--max-body 16m] [--mmap]
//! ```
//!
//! Each `--snapshot name=path` loads a checksummed `.scube` snapshot (see
//! `scube save`) and registers it under `name`. With `--mmap`, format-v4
//! snapshots are memory-mapped instead of read onto the heap: opens are
//! O(metadata) regardless of file size and daemons serving the same file
//! share one physical copy through the page cache. `--max-body` bounds
//! `POST /update` payloads (default 16 MiB; suffixes `k`/`m`/`g` accepted) —
//! larger bodies get a 413 naming the cap. The daemon serves JSON over
//! loopback-friendly HTTP/1.1 until a `POST /shutdown` arrives:
//!
//! ```text
//! curl 'http://127.0.0.1:7007/cubes/main/query?sa=gender=F&ca=region=north'
//! curl 'http://127.0.0.1:7007/cubes/main/topk?index=gini&k=10'
//! curl 'http://127.0.0.1:7007/stats'
//! curl -X POST -d '{"add":[{"unit":"u1","values":[["gender","F"]]}]}' \
//!      'http://127.0.0.1:7007/cubes/main/update'
//! curl -X POST 'http://127.0.0.1:7007/shutdown'
//! ```
//!
//! With exactly one snapshot loaded, `/query`, `/topk`, `/slice`, `/dice`,
//! `/breakdown`, and `/update` work without the `/cubes/<name>` prefix.
//! See `scube::daemon` for the endpoint table and hot-swap semantics.

use std::process::ExitCode;

use scube::daemon::{Daemon, DaemonConfig};
use scube_common::{Result, ScubeError};
use scube_cube::CubeSnapshot;

const USAGE: &str = "\
scubed: serve segregation cubes over HTTP

usage:
  scubed --snapshot name=cube.scube [--snapshot n2=other.scube ...]
         [--listen 127.0.0.1:7007] [--workers N] [--shards N]
         [--cache N] [--update-threads N] [--max-body BYTES] [--mmap]

  --mmap      memory-map format-v4 snapshots (zero-copy serving; O(ms) open)
  --max-body  cap POST /update bodies in bytes (k/m/g suffixes; default 16m)

endpoints: /healthz /cubes /stats /shutdown and per cube
  /cubes/<name>/{query,topk,slice,dice,breakdown,stats,update}
  (aliases without the prefix when exactly one cube is loaded)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match serve(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scubed: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    listen: String,
    snapshots: Vec<(String, String)>,
    config: DaemonConfig,
    mmap: bool,
}

fn parse_args(args: &[String]) -> Result<Options> {
    let bad = |msg: String| ScubeError::InvalidParameter(msg);
    let mut listen = "127.0.0.1:7007".to_string();
    let mut snapshots: Vec<(String, String)> = Vec::new();
    let mut config = DaemonConfig::default();
    let mut mmap = false;
    let mut seen: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag != "--snapshot" && seen.contains(&flag.as_str()) {
            return Err(bad(format!("duplicate flag {flag}")));
        }
        if flag == "--mmap" {
            mmap = true;
            seen.push(flag.as_str());
            continue;
        }
        let value = it.next().ok_or_else(|| bad(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--listen" => listen = value.clone(),
            "--snapshot" => {
                let (name, path) = value
                    .split_once('=')
                    .ok_or_else(|| bad(format!("--snapshot wants name=path, got {value:?}")))?;
                snapshots.push((name.to_string(), path.to_string()));
            }
            "--workers" => {
                config.workers = parse_count(value, "--workers")?;
            }
            "--shards" => {
                config.shards = parse_count(value, "--shards")?;
            }
            "--cache" => {
                config.cache_capacity =
                    value.parse().map_err(|_| bad(format!("bad --cache: {value:?}")))?;
            }
            "--update-threads" => {
                config.update_threads = parse_count(value, "--update-threads")?;
            }
            "--max-body" => {
                config.max_body = parse_bytes(value, "--max-body")?;
            }
            other => return Err(bad(format!("unknown flag {other}"))),
        }
        seen.push(flag.as_str());
    }
    if snapshots.is_empty() {
        return Err(bad("at least one --snapshot name=path is required".into()));
    }
    Ok(Options { listen, snapshots, config, mmap })
}

fn parse_count(value: &str, flag: &str) -> Result<usize> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| ScubeError::InvalidParameter(format!("bad {flag}: {value:?}")))
}

/// Parse a byte count with an optional `k`/`m`/`g` (KiB/MiB/GiB) suffix.
fn parse_bytes(value: &str, flag: &str) -> Result<usize> {
    let bad = || ScubeError::InvalidParameter(format!("bad {flag}: {value:?}"));
    let (digits, shift) = match value.as_bytes().last().map(|b| b.to_ascii_lowercase()) {
        Some(b'k') => (&value[..value.len() - 1], 10),
        Some(b'm') => (&value[..value.len() - 1], 20),
        Some(b'g') => (&value[..value.len() - 1], 30),
        _ => (value, 0),
    };
    let n: usize = digits.parse().map_err(|_| bad())?;
    n.checked_mul(1usize << shift).filter(|&n| n >= 1).ok_or_else(bad)
}

fn serve(args: &[String]) -> Result<()> {
    let options = parse_args(args)?;
    let mut cubes = Vec::with_capacity(options.snapshots.len());
    for (name, path) in &options.snapshots {
        let (snapshot, how) = if options.mmap {
            (CubeSnapshot::open_mmap(path)?, "mapped")
        } else {
            (CubeSnapshot::load(path)?, "loaded")
        };
        println!(
            "{how} {name} from {path}: {} cells, {} units",
            snapshot.cube().len(),
            snapshot.cube().num_units()
        );
        cubes.push((name.clone(), snapshot));
    }
    let daemon = Daemon::bind(&options.listen, cubes, options.config.clone())?;
    println!(
        "scubed listening on {} ({} workers); POST /shutdown to stop",
        daemon.local_addr()?,
        options.config.workers
    );
    daemon.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_full_flag_set() {
        let o = opts(&[
            "--snapshot",
            "main=a.scube",
            "--snapshot",
            "other=b.scube",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--shards",
            "8",
            "--cache",
            "0",
            "--update-threads",
            "2",
        ])
        .unwrap();
        assert_eq!(o.listen, "127.0.0.1:0");
        assert_eq!(
            o.snapshots,
            vec![("main".into(), "a.scube".into()), ("other".into(), "b.scube".into())]
        );
        assert_eq!(o.config.workers, 3);
        assert_eq!(o.config.shards, 8);
        assert_eq!(o.config.cache_capacity, 0);
        assert_eq!(o.config.update_threads, 2);
        assert!(!o.mmap);
        assert_eq!(o.config.max_body, 16 * 1024 * 1024, "default cap is minihttp's 16 MiB");
    }

    #[test]
    fn parses_mmap_and_max_body() {
        let o = opts(&["--mmap", "--snapshot", "a=b", "--max-body", "1m"]).unwrap();
        assert!(o.mmap);
        assert_eq!(o.config.max_body, 1 << 20);
        for (spec, bytes) in [("4096", 4096), ("64k", 64 << 10), ("2M", 2 << 20), ("1g", 1 << 30)] {
            let o = opts(&["--snapshot", "a=b", "--max-body", spec]).unwrap();
            assert_eq!(o.config.max_body, bytes, "{spec}");
        }
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(opts(&[]).is_err(), "needs a snapshot");
        assert!(opts(&["--listen", "x"]).is_err(), "still needs a snapshot");
        assert!(opts(&["--snapshot", "no-equals"]).is_err());
        assert!(opts(&["--snapshot", "a=b", "--workers"]).is_err(), "missing value");
        assert!(opts(&["--snapshot", "a=b", "--workers", "0"]).is_err());
        assert!(opts(&["--snapshot", "a=b", "--bogus", "1"]).is_err());
        assert!(
            opts(&["--snapshot", "a=b", "--workers", "2", "--workers", "3"]).is_err(),
            "duplicate flag"
        );
        assert!(opts(&["--snapshot", "a=b", "--max-body", "0"]).is_err(), "zero cap");
        assert!(opts(&["--snapshot", "a=b", "--max-body", "5x"]).is_err(), "bad suffix");
        assert!(opts(&["--snapshot", "a=b", "--max-body", "99999999999999999999"]).is_err());
        assert!(opts(&["--snapshot", "a=b", "--mmap", "--mmap"]).is_err(), "duplicate --mmap");
    }
}
