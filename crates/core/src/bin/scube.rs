//! The `scube` command-line tool — the standalone wizard (paper Fig. 4)
//! as a CLI.
//!
//! ```text
//! scube [run] --individuals directors.csv --id id --sa gender,age --ca residence \
//!       --groups companies.csv --group-id id --group-ca sector,region \
//!       --membership boards.csv --ind-col director --grp-col company \
//!       [--interval from,to] [--dates 1995,2000,2005] \
//!       --units sector | cc | threshold:2 | stoc:0.5,0.5,2 \
//!       [--side groups|individuals] [--min-shared 1] [--min-support 50] \
//!       [--closed] [--parallel] --out reports/
//!
//! scube [run|save] --final-table rows.csv --sa gender,age --ca sector* \
//!       [--unit-col unitID] [--min-support 50] [--closed] ...
//!
//! scube save  <same input flags> --snapshot cube.scube
//! scube query --snapshot cube.scube [--mmap] [--sa gender=F] [--ca region=north]
//!             [--breakdown] [--top 10 --rank dissimilarity --min-total 100]
//!             [--slice gender=F,region=north] [--threads 4]
//! ```
//!
//! `--units` selects the scenario: a group attribute name (tabular units),
//! `cc` / `threshold:<w>` / `stoc:<tau>,<alpha>,<horizon>` (graph
//! clustering; `--side` picks which projection). Reports are written by the
//! Visualizer into `--out`. Multi-valued CSV columns are declared with a
//! `*` suffix, e.g. `--ca sectors*`.
//!
//! `--final-table` takes the tabular shortcut: the CSV already carries a
//! unit column, so the pre-processing stages are skipped and the rows
//! stream one record at a time through the dictionary encoder — staging
//! memory stays bounded no matter how many rows the file holds.
//!
//! `save` runs the pipeline once and persists the cube **and** its vertical
//! postings as a checksummed binary snapshot; `query` serves point / top-k /
//! slice queries from such a snapshot without re-mining — non-materialized
//! ⋆-combinations are recomputed exactly from the stored postings. With
//! `--threads N` the snapshot is served through the shared-reference
//! [`ConcurrentCubeEngine`] (sharded cell cache, parallel top-k ranking)
//! instead of the single-session engine; answers are bit-identical. With
//! `--mmap`, a format-v4 snapshot is memory-mapped instead of read onto the
//! heap: opening costs O(metadata) however large the file is.

use std::process::ExitCode;

use scube::prelude::*;
use scube_common::ScubeError;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let verb = match args.first().map(String::as_str) {
        Some("save") | Some("query") | Some("run") | Some("update") => args.remove(0),
        _ => "run".to_string(),
    };
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{}", USAGE);
        return ExitCode::SUCCESS;
    }
    let outcome = match verb.as_str() {
        "save" => run_save(&args),
        "query" => run_query(&args),
        "update" => run_update(&args),
        _ => run(&args),
    };
    match outcome {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scube: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
scube — segregation discovery from relational and graph data

verbs:
  scube [run] ...        run the pipeline and write reports (--out)
  scube save ...         run the pipeline and persist a cube snapshot
                         (--snapshot <file>; input flags as for run)
  scube update ...       fold appended/retracted rows into a saved snapshot:
    --snapshot <file>    the snapshot to patch and re-save (required)
    --add <csv>          appended final-table rows: one column per cube
                         attribute plus the unit column
    --remove <csv>       retracted rows (same shape), each removed by exact
                         match; unknown values or unmatched rows are errors
                         (give --add, --remove, or both)
    --unit-col <col>     the unit column of --add/--remove [unitID]
    --threads <n>        re-evaluate dirty cells on up to n threads [1]
  scube query ...        serve queries from a saved snapshot:
    --snapshot <file>    the snapshot to load (required)
    --mmap               memory-map the snapshot (format v4) instead of
                         loading it onto the heap — O(ms) open at any size
    --sa a=v,...         point query: minority coordinates (omit = *)
    --ca a=v,...         point query: context coordinates (omit = *)
    --breakdown          also print the per-unit drill-down of the cell
    --index <name>       answer with one index only (d|gini|h|xpx|xpy|a);
                         also the default --rank of a --top query
    --significance       attach a permutation-test p-value to point-query
                         indexes (999 permutations, fixed seed)
    --top <k>            top-k materialized cells by --rank
    --min-total <n>      top-k population filter [1]
    --slice a=v,...      materialized cells fixing these coordinates
    --threads <n>        serve through the concurrent (sharded) engine,
                         ranking top-k on up to n threads [single-session]

required (run / save):
  --final-table <csv>    tabular shortcut: rows already carry a unit column
                         (--sa/--ca name its columns; streams record by
                         record, so million-row files ingest in bounded
                         memory); replaces the four inputs below
    --unit-col <col>     the unit column of --final-table [unitID]
  --individuals <csv>    individuals input (one row per person)
  --id <col>             individuals id column
  --sa <c1,c2*,...>      segregation-attribute columns ('*' = multi-valued)
  --groups <csv>         groups input (companies, schools, ...)
  --group-id <col>       groups id column
  --membership <csv>     membership edges input
  --ind-col <col>        membership column naming the individual
  --grp-col <col>        membership column naming the group
  --units <spec>         <group-attr> | cc | threshold:<w> | stoc:<tau>,<alpha>,<h> | labelprop
  --out <dir>            report output directory

optional:
  --ca <c1,...>          individual context-attribute columns
  --group-ca <c1,...>    group context-attribute columns
  --interval <from,to>   membership validity-interval columns
  --dates <y1,y2,...>    snapshot dates (temporal analysis)
  --side <groups|individuals>  projection side for graph units [groups]
  --min-shared <n>       projection weight threshold [1]
  --min-support <n>      minimum cube-cell population [1]
  --chunk-rows <n>       (with --final-table) chunked bounded-memory build:
                         fold rows into the postings every n rows and never
                         materialize the horizontal table; the cube and any
                         snapshot are byte-identical to the resident build's
  --closed               materialize closed cells only
  --parallel             parallel cube construction
  --index <i1,...|all>   measure subset to fold per cell [all]; a proper
                         subset persists as the compact snapshot v5
  --rank <index>         ranking index for top_contexts [dissimilarity]
";

#[derive(Debug)]
struct Flags {
    args: Vec<String>,
}

/// Flags that take no value (everything else consumes the next argument).
const BOOLEAN_FLAGS: &[&str] =
    &["--closed", "--parallel", "--breakdown", "--mmap", "--significance", "--help", "-h"];

impl Flags {
    /// Wrap an argument list, rejecting duplicate flags up front: `--sa
    /// gender=F --sa gender=M` would otherwise silently answer with the
    /// first occurrence only.
    fn new(args: &[String]) -> Result<Self> {
        let mut seen: Vec<&str> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if arg.starts_with("--") || arg == "-h" {
                if seen.contains(&arg) {
                    return Err(ScubeError::InvalidParameter(format!(
                        "flag {arg} given more than once"
                    )));
                }
                seen.push(arg);
                if !BOOLEAN_FLAGS.contains(&arg) {
                    i += 1; // skip the flag's value
                }
            }
            i += 1;
        }
        Ok(Flags { args: args.to_vec() })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| ScubeError::InvalidParameter(format!("missing required flag {name}")))
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value of an optional flag, erroring when the flag is present but
    /// its value is missing — so `--sa` with nothing after it never
    /// silently degrades to the `⋆` coordinate.
    fn value_of(&self, name: &str) -> Result<Option<&str>> {
        match (self.has(name), self.get(name)) {
            (true, None) => Err(ScubeError::InvalidParameter(format!("flag {name} needs a value"))),
            (_, v) => Ok(v),
        }
    }
}

/// Split a `c1,c2*,c3` column list into `(name, multi_valued)` pairs.
fn columns(list: &str) -> Vec<(String, bool)> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s.strip_suffix('*') {
            Some(name) => (name.to_string(), true),
            None => (s.to_string(), false),
        })
        .collect()
}

fn parse_units(spec: &str, side: &str) -> Result<UnitStrategy> {
    let method = if spec == "cc" {
        Some(ClusteringMethod::ConnectedComponents)
    } else if let Some(w) = spec.strip_prefix("threshold:") {
        let w: u32 = w
            .parse()
            .map_err(|_| ScubeError::InvalidParameter(format!("bad threshold weight '{w}'")))?;
        Some(ClusteringMethod::WeightThreshold { min_weight: w })
    } else if spec == "labelprop" {
        Some(ClusteringMethod::LabelPropagation(Default::default()))
    } else if let Some(params) = spec.strip_prefix("stoc:") {
        let parts: Vec<&str> = params.split(',').collect();
        if parts.len() != 3 {
            return Err(ScubeError::InvalidParameter(
                "stoc spec must be stoc:<tau>,<alpha>,<horizon>".into(),
            ));
        }
        let parse_f = |s: &str| {
            s.parse::<f64>()
                .map_err(|_| ScubeError::InvalidParameter(format!("bad stoc number '{s}'")))
        };
        Some(ClusteringMethod::Stoc(StocParams {
            tau: parse_f(parts[0])?,
            alpha: parse_f(parts[1])?,
            horizon: parts[2].parse().map_err(|_| {
                ScubeError::InvalidParameter(format!("bad stoc horizon '{}'", parts[2]))
            })?,
            seed: 0xC1B7,
        }))
    } else {
        None
    };
    Ok(match method {
        Some(m) if side == "individuals" => UnitStrategy::ClusterIndividuals(m),
        Some(m) => UnitStrategy::ClusterGroups(m),
        None => UnitStrategy::GroupAttribute(spec.to_string()),
    })
}

/// Split a `a=v,b=w` coordinate list into `(attr, value)` pairs.
fn parse_pairs(list: &str) -> Result<Vec<(String, String)>> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s.split_once('=') {
            Some((a, v)) if !a.is_empty() && !v.is_empty() => {
                Ok((a.trim().to_string(), v.trim().to_string()))
            }
            _ => {
                Err(ScubeError::InvalidParameter(format!("bad coordinate '{s}' (want attr=value)")))
            }
        })
        .collect()
}

/// Build the configured wizard plus the snapshot dates from input flags
/// (shared between `run` and `save`).
fn wizard_from_flags(flags: &Flags) -> Result<(Wizard, Vec<i64>)> {
    let mut ind_spec = IndividualsSpec::new(flags.require("--id")?);
    for (name, multi) in columns(flags.require("--sa")?) {
        ind_spec.sa_columns.push((name, multi));
    }
    for (name, multi) in columns(flags.get("--ca").unwrap_or("")) {
        ind_spec.ca_columns.push((name, multi));
    }

    let mut grp_spec = GroupsSpec::new(flags.require("--group-id")?);
    for (name, multi) in columns(flags.get("--group-ca").unwrap_or("")) {
        grp_spec.ca_columns.push((name, multi));
    }

    let mut mem_spec =
        MembershipSpec::new(flags.require("--ind-col")?, flags.require("--grp-col")?);
    if let Some(interval) = flags.get("--interval") {
        let cols = columns(interval);
        if cols.len() != 2 {
            return Err(ScubeError::InvalidParameter(
                "--interval needs exactly two columns: from,to".into(),
            ));
        }
        mem_spec = mem_spec.with_interval(cols[0].0.clone(), cols[1].0.clone());
    }

    let dates: Vec<i64> = match flags.get("--dates") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| ScubeError::InvalidParameter(format!("bad date '{}'", s.trim())))
            })
            .collect::<Result<_>>()?,
        None => Vec::new(),
    };

    let side = flags.get("--side").unwrap_or("groups");
    if !["groups", "individuals"].contains(&side) {
        return Err(ScubeError::InvalidParameter(format!("bad --side '{side}'")));
    }
    let units = parse_units(flags.require("--units")?, side)?;

    let min_support: u64 = flags
        .get("--min-support")
        .unwrap_or("1")
        .parse()
        .map_err(|_| ScubeError::InvalidParameter("bad --min-support".into()))?;
    let min_shared: u32 = flags
        .get("--min-shared")
        .unwrap_or("1")
        .parse()
        .map_err(|_| ScubeError::InvalidParameter("bad --min-shared".into()))?;

    let mut wizard = Wizard::new()
        .individuals_csv(flags.require("--individuals")?, ind_spec)
        .groups_csv(flags.require("--groups")?, grp_spec)
        .membership_csv(flags.require("--membership")?, mem_spec)
        .units(units)
        .min_shared(min_shared)
        .min_support(min_support)
        .parallel(flags.has("--parallel"));
    if flags.has("--closed") {
        wizard = wizard.materialize(Materialize::ClosedOnly);
    }
    if let Some(measures) = parse_measures(flags)? {
        wizard = wizard.measures(measures);
    }
    Ok((wizard, dates))
}

/// Parse the `--final-table` input flags shared by the resident and
/// chunked paths: the CSV path, the role spec, and the cube builder.
fn final_table_flags(flags: &Flags) -> Result<(String, FinalTableSpec, CubeBuilder)> {
    let path = flags.require("--final-table")?.to_string();
    if flags.has("--dates") {
        return Err(ScubeError::InvalidParameter(
            "--final-table has no membership intervals; drop --dates".into(),
        ));
    }
    let mut spec = FinalTableSpec::new(flags.value_of("--unit-col")?.unwrap_or("unitID"));
    for (name, multi) in columns(flags.require("--sa")?) {
        spec.sa_columns.push((name, multi));
    }
    for (name, multi) in columns(flags.get("--ca").unwrap_or("")) {
        spec.ca_columns.push((name, multi));
    }
    let min_support: u64 = flags
        .get("--min-support")
        .unwrap_or("1")
        .parse()
        .map_err(|_| ScubeError::InvalidParameter("bad --min-support".into()))?;
    let mut cube = CubeBuilder::new().min_support(min_support).parallel(flags.has("--parallel"));
    if flags.has("--closed") {
        cube = cube.materialize(Materialize::ClosedOnly);
    }
    if let Some(measures) = parse_measures(flags)? {
        cube = cube.measures(measures);
    }
    Ok((path, spec, cube))
}

/// The `--chunk-rows` flag: `Some(n)` selects the chunked build.
fn parse_chunk_rows(flags: &Flags) -> Result<Option<usize>> {
    flags
        .value_of("--chunk-rows")?
        .map(|s| match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ScubeError::InvalidParameter(format!("bad --chunk-rows '{s}' (want >= 1)"))),
        })
        .transpose()
}

/// The `--final-table` tabular shortcut: stream the CSV straight through
/// the dictionary encoder (bounded staging memory) and build the cube.
fn run_final_table_flags(flags: &Flags) -> Result<ScubeResult> {
    let (path, spec, cube) = final_table_flags(flags)?;
    scube::run_final_table_csv(path, &spec, &cube)
}

/// As [`run_final_table_flags`], via the chunked builder: the horizontal
/// table is never materialized, peak memory is postings + one chunk.
fn run_final_table_flags_chunked(flags: &Flags, chunk_rows: usize) -> Result<ChunkedBuild> {
    let (path, spec, cube) = final_table_flags(flags)?;
    scube::run_final_table_csv_chunked(path, &spec, &cube, chunk_rows)
}

/// The build-mode suffix of run/save summary lines: chunked runs report
/// their peak staged-chunk residency, resident runs say so.
fn build_mode_summary(chunked: Option<&scube_data::ChunkedBuildStats>) -> String {
    match chunked {
        Some(s) => format!(
            "chunked build: {} flushes of <= {} rows, peak chunk {} rows / {} items staged",
            s.flushes, s.chunk_rows, s.peak_chunk_rows, s.peak_chunk_items
        ),
        None => "resident build".to_string(),
    }
}

fn parse_rank(flags: &Flags) -> Result<SegIndex> {
    flags
        .get("--rank")
        .map(|s| {
            SegIndex::parse(s)
                .ok_or_else(|| ScubeError::InvalidParameter(format!("unknown index '{s}'")))
        })
        .transpose()
        .map(|r| r.unwrap_or(SegIndex::Dissimilarity))
}

/// The `--index` measure subset of a build verb (run/save), if given.
fn parse_measures(flags: &Flags) -> Result<Option<MeasureSet>> {
    flags
        .value_of("--index")?
        .map(|s| {
            MeasureSet::parse(s).ok_or_else(|| {
                ScubeError::InvalidParameter(format!(
                    "bad --index '{s}' (want 'all' or a comma-separated list of index names)"
                ))
            })
        })
        .transpose()
}

/// The single `--index` of a query verb, if given.
fn parse_query_index(flags: &Flags) -> Result<Option<SegIndex>> {
    flags
        .value_of("--index")?
        .map(|s| {
            SegIndex::parse(s)
                .ok_or_else(|| ScubeError::InvalidParameter(format!("unknown index '{s}'")))
        })
        .transpose()
}

fn run(args: &[String]) -> Result<String> {
    let flags = Flags::new(args)?;
    let rank = parse_rank(&flags)?;
    let out_dir = flags.require("--out")?.to_string();

    if flags.has("--final-table") {
        if let Some(chunk_rows) = parse_chunk_rows(&flags)? {
            let result = run_final_table_flags_chunked(&flags, chunk_rows)?;
            Visualizer::new(&out_dir).rank_by(rank).write_chunked(&result)?;
            return Ok(format!(
                "wrote {out_dir}: {} rows, {} units, {} cells ({:?}; {})",
                result.stats.n_rows,
                result.stats.n_units,
                result.stats.n_cells,
                result.timings.total(),
                build_mode_summary(Some(&result.chunk_stats))
            ));
        }
        let result = run_final_table_flags(&flags)?;
        Visualizer::new(&out_dir).rank_by(rank).write_all(&result)?;
        return Ok(format!(
            "wrote {out_dir}: {} rows, {} units, {} cells ({:?}; {})",
            result.stats.n_rows,
            result.stats.n_units,
            result.stats.n_cells,
            result.timings.total(),
            build_mode_summary(None)
        ));
    }
    if flags.has("--chunk-rows") {
        return Err(ScubeError::InvalidParameter(
            "--chunk-rows requires --final-table (the graph scenarios build resident)".into(),
        ));
    }
    let (wizard, dates) = wizard_from_flags(&flags)?;

    if dates.is_empty() {
        let result = wizard.run()?;
        Visualizer::new(&out_dir).rank_by(rank).write_all(&result)?;
        Ok(format!(
            "wrote {out_dir}: {} rows, {} units, {} cells ({:?})",
            result.stats.n_rows,
            result.stats.n_units,
            result.stats.n_cells,
            result.timings.total()
        ))
    } else {
        let snapshots = wizard.dates(dates).run_snapshots()?;
        let mut lines = Vec::new();
        for (date, result) in &snapshots {
            let dir = format!("{out_dir}/{date}");
            Visualizer::new(&dir).rank_by(rank).write_all(result)?;
            lines.push(format!(
                "wrote {dir}: {} rows, {} units, {} cells",
                result.stats.n_rows, result.stats.n_units, result.stats.n_cells
            ));
        }
        Ok(lines.join("\n"))
    }
}

/// `scube save`: run the pipeline once, persist cube + postings.
fn run_save(args: &[String]) -> Result<String> {
    let flags = Flags::new(args)?;
    let path = flags.require("--snapshot")?.to_string();
    if flags.has("--final-table") {
        if let Some(chunk_rows) = parse_chunk_rows(&flags)? {
            let result = run_final_table_flags_chunked(&flags, chunk_rows)?;
            let snap = scube::snapshot_chunked(&result)?;
            snap.save(&path)?;
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            return Ok(format!(
                "wrote {path}: {} cells over {} units ({} rows, {bytes} bytes, {:?}; {})",
                result.cube.len(),
                result.stats.n_units,
                result.stats.n_rows,
                result.timings.total(),
                build_mode_summary(Some(&result.chunk_stats))
            ));
        }
    } else if flags.has("--chunk-rows") {
        return Err(ScubeError::InvalidParameter(
            "--chunk-rows requires --final-table (the graph scenarios build resident)".into(),
        ));
    }
    let result = if flags.has("--final-table") {
        run_final_table_flags(&flags)?
    } else {
        let (wizard, dates) = wizard_from_flags(&flags)?;
        if !dates.is_empty() {
            return Err(ScubeError::InvalidParameter(
                "save persists a single cube; drop --dates (snapshot each date separately)".into(),
            ));
        }
        wizard.run()?
    };
    let snap = scube::snapshot(&result)?;
    snap.save(&path)?;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "wrote {path}: {} cells over {} units ({} rows, {bytes} bytes, {:?}; {})",
        result.cube.len(),
        result.stats.n_units,
        result.stats.n_rows,
        result.timings.total(),
        build_mode_summary(None)
    ))
}

/// `scube update`: fold appended and/or retracted rows into a saved
/// snapshot, re-save it.
fn run_update(args: &[String]) -> Result<String> {
    let flags = Flags::new(args)?;
    let path = flags.require("--snapshot")?.to_string();
    let add_path = flags.value_of("--add")?;
    let remove_path = flags.value_of("--remove")?;
    if add_path.is_none() && remove_path.is_none() {
        return Err(ScubeError::InvalidParameter(
            "update needs --add <csv>, --remove <csv>, or both".into(),
        ));
    }
    let unit_col = flags.value_of("--unit-col")?.unwrap_or("unitID");
    let threads: usize = match flags.value_of("--threads")? {
        None => 1,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Err(ScubeError::InvalidParameter(format!(
                    "bad --threads '{s}' (want >= 1)"
                )))
            }
        },
    };
    let add = add_path.map(Relation::read_csv_path).transpose()?;
    let remove = remove_path.map(Relation::read_csv_path).transpose()?;
    let start = std::time::Instant::now();
    let stats =
        scube::update_snapshot_file(&path, add.as_ref(), remove.as_ref(), unit_col, threads)?;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "updated {path}: +{} −{} rows (+{} −{} values, +{} −{} units); {} cells re-evaluated, \
         {} promoted, {} demoted, {} untouched ({bytes} bytes, {:?})",
        stats.rows_added,
        stats.rows_removed,
        stats.new_items,
        stats.dropped_items,
        stats.new_units,
        stats.dropped_units,
        stats.dirty_cells,
        stats.promoted_cells,
        stats.demoted_cells,
        stats.clean_cells,
        start.elapsed()
    ))
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4}")).unwrap_or_else(|| "-".into())
}

fn fmt_values(v: &IndexValues) -> String {
    format!(
        "M={} T={} units={}  D={} G={} H={} xPx={} xPy={} A={}",
        v.minority,
        v.total,
        v.num_units,
        fmt_opt(v.dissimilarity),
        fmt_opt(v.gini),
        fmt_opt(v.information),
        fmt_opt(v.isolation),
        fmt_opt(v.interaction),
        fmt_opt(v.atkinson),
    )
}

/// Single-measure form of [`fmt_values`], for `query --index <name>`.
fn fmt_one_value(v: &IndexValues, index: SegIndex) -> String {
    format!(
        "M={} T={} units={}  {}={}",
        v.minority,
        v.total,
        v.num_units,
        index.short_name(),
        fmt_opt(v.get(index))
    )
}

/// The `--significance` pass: permutation-test the point-query cell's
/// indexes against random allocation of the minority over the units
/// (deterministic seed, so transcripts are reproducible). Tests the single
/// `--index` when given, otherwise every index the cell carries a value
/// for.
fn significance_lines(
    breakdown: &[(u32, u64, u64)],
    values: &IndexValues,
    only: Option<SegIndex>,
) -> Result<Vec<String>> {
    let counts = UnitCounts::from_pairs(breakdown.iter().map(|&(_, m, t)| (m, t)))?;
    let indexes: Vec<SegIndex> = match only {
        Some(i) => vec![i],
        None => SegIndex::ALL.into_iter().filter(|&i| values.get(i).is_some()).collect(),
    };
    let test = PermutationTest::default();
    let mut out = Vec::with_capacity(indexes.len());
    for index in indexes {
        match test.run(index, &counts) {
            Some(r) => out.push(format!(
                "  significance {}: observed={:.4} null_mean={:.4} p={:.4}{}",
                index.name(),
                r.observed,
                r.null_mean,
                r.p_value,
                if r.p_value < 0.05 { " *" } else { "" }
            )),
            None => out.push(format!("  significance {}: undefined on this cell", index.name())),
        }
    }
    Ok(out)
}

/// How `scube query` serves a loaded snapshot: the single-session engine by
/// default, or the shared-reference concurrent engine under `--threads N`
/// (same answers, bit for bit; the concurrent form ranks top-k in parallel).
enum Serving {
    Serial(Box<CubeQueryEngine>),
    Concurrent(Box<ConcurrentCubeEngine>, usize),
}

impl Serving {
    fn cube(&self) -> &SegregationCube {
        match self {
            Serving::Serial(e) => e.cube(),
            Serving::Concurrent(e, _) => e.cube(),
        }
    }

    fn resolve(&self, sa: &[(&str, &str)], ca: &[(&str, &str)]) -> Result<CellCoords> {
        match self {
            Serving::Serial(e) => e.resolve(sa, ca),
            Serving::Concurrent(e, _) => e.resolve(sa, ca),
        }
    }

    fn query(&mut self, coords: &CellCoords) -> Result<IndexValues> {
        match self {
            Serving::Serial(e) => e.query(coords),
            Serving::Concurrent(e, _) => e.query(coords),
        }
    }

    fn unit_breakdown(&mut self, coords: &CellCoords) -> Vec<(u32, u64, u64)> {
        match self {
            Serving::Serial(e) => e.unit_breakdown(coords),
            Serving::Concurrent(e, _) => e.unit_breakdown(coords),
        }
    }

    fn top_k(&self, index: SegIndex, k: usize, min_total: u64) -> Result<scube_cube::RankedCells> {
        match self {
            Serving::Serial(e) => Ok(e.top_k(index, k, min_total)),
            Serving::Concurrent(e, threads) => {
                Ok(e.top_k_batch(&[index], k, min_total, *threads)?.remove(0).1)
            }
        }
    }

    fn slice(&self, fixed: &[(&str, &str)]) -> Vec<(CellCoords, IndexValues)> {
        match self {
            Serving::Serial(e) => e.slice(fixed),
            Serving::Concurrent(e, _) => e.slice(fixed),
        }
    }
}

/// `scube query`: serve point / top-k / slice queries from a snapshot.
fn run_query(args: &[String]) -> Result<String> {
    let flags = Flags::new(args)?;
    let path = flags.require("--snapshot")?;
    let threads: Option<usize> = flags
        .value_of("--threads")?
        .map(|s| match s.parse() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(ScubeError::InvalidParameter(format!("bad --threads '{s}' (want >= 1)"))),
        })
        .transpose()?;
    let load_start = std::time::Instant::now();
    let snap: CubeSnapshot = if flags.has("--mmap") {
        CubeSnapshot::open_mmap(path)?
    } else {
        CubeSnapshot::load(path)?
    };
    let loaded_in = load_start.elapsed();
    let mut engine = match threads {
        Some(n) => Serving::Concurrent(Box::new(ConcurrentCubeEngine::new(snap)), n),
        None => Serving::Serial(Box::new(CubeQueryEngine::new(snap))),
    };
    let mut out: Vec<String> = Vec::new();
    let mut answered = false;

    let query_index = parse_query_index(&flags)?;
    for point_only in ["--breakdown", "--significance"] {
        if flags.has(point_only) && !flags.has("--sa") && !flags.has("--ca") {
            return Err(ScubeError::InvalidParameter(format!(
                "{point_only} drills into a point query; give it --sa and/or --ca"
            )));
        }
    }
    if !flags.has("--top") {
        for dependent in ["--rank", "--min-total"] {
            if flags.has(dependent) {
                return Err(ScubeError::InvalidParameter(format!(
                    "{dependent} only applies to a --top query"
                )));
            }
        }
    }

    if flags.has("--sa") || flags.has("--ca") {
        answered = true;
        let sa = parse_pairs(flags.value_of("--sa")?.unwrap_or(""))?;
        let ca = parse_pairs(flags.value_of("--ca")?.unwrap_or(""))?;
        let sa_refs: Vec<(&str, &str)> = sa.iter().map(|(a, v)| (&a[..], &v[..])).collect();
        let ca_refs: Vec<(&str, &str)> = ca.iter().map(|(a, v)| (&a[..], &v[..])).collect();
        let coords = engine.resolve(&sa_refs, &ca_refs)?;
        let values = engine.query(&coords)?;
        out.push(engine.cube().labels().describe(&coords));
        out.push(format!(
            "  {}",
            match query_index {
                Some(index) => fmt_one_value(&values, index),
                None => fmt_values(&values),
            }
        ));
        if flags.has("--significance") {
            let breakdown = engine.unit_breakdown(&coords);
            out.extend(significance_lines(&breakdown, &values, query_index)?);
        }
        if flags.has("--breakdown") {
            let breakdown = engine.unit_breakdown(&coords);
            let names = engine.cube().labels().unit_names.clone();
            for (unit, m, t) in breakdown {
                let name =
                    names.get(unit as usize).cloned().unwrap_or_else(|| format!("unit{unit}"));
                out.push(format!("  {name}: {m}/{t}"));
            }
        }
    }

    if let Some(k) = flags.value_of("--top")? {
        answered = true;
        let k: usize = k.parse().map_err(|_| ScubeError::InvalidParameter("bad --top".into()))?;
        let min_total: u64 = flags
            .value_of("--min-total")?
            .unwrap_or("1")
            .parse()
            .map_err(|_| ScubeError::InvalidParameter("bad --min-total".into()))?;
        // --rank wins; --index is the fallback so `--index gini --top 5`
        // ranks by the measure it queries.
        let rank = if flags.has("--rank") {
            parse_rank(&flags)?
        } else {
            query_index.unwrap_or(SegIndex::Dissimilarity)
        };
        out.push(format!("top {k} by {rank} (population >= {min_total}):"));
        for (coords, values, x) in engine.top_k(rank, k, min_total)? {
            out.push(format!(
                "  {x:.4}  {}  (M={}, T={})",
                engine.cube().labels().describe(&coords),
                values.minority,
                values.total
            ));
        }
    }

    if let Some(list) = flags.value_of("--slice")? {
        answered = true;
        let fixed = parse_pairs(list)?;
        let fixed_refs: Vec<(&str, &str)> = fixed.iter().map(|(a, v)| (&a[..], &v[..])).collect();
        out.push(format!("slice {list}:"));
        for (coords, values) in engine.slice(&fixed_refs) {
            out.push(format!(
                "  {}  {}",
                engine.cube().labels().describe(&coords),
                match query_index {
                    Some(index) => fmt_one_value(&values, index),
                    None => fmt_values(&values),
                }
            ));
        }
    }

    if !answered {
        let cube = engine.cube();
        out.push(format!(
            "loaded {path} in {loaded_in:?}: {} cells over {} units (min_support {}); \
             ask with --sa/--ca, --top, or --slice",
            cube.len(),
            cube.num_units(),
            cube.min_support()
        ));
    }
    Ok(out.join("\n"))
}

// Keep the argument helpers honest.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_parse_multi_flags() {
        assert_eq!(
            columns("gender,sectors*,age"),
            vec![
                ("gender".to_string(), false),
                ("sectors".to_string(), true),
                ("age".to_string(), false),
            ]
        );
        assert!(columns("").is_empty());
    }

    #[test]
    fn unit_specs_parse() {
        assert_eq!(
            parse_units("sector", "groups").unwrap(),
            UnitStrategy::GroupAttribute("sector".into())
        );
        assert!(matches!(
            parse_units("cc", "groups").unwrap(),
            UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents)
        ));
        assert!(matches!(
            parse_units("cc", "individuals").unwrap(),
            UnitStrategy::ClusterIndividuals(ClusteringMethod::ConnectedComponents)
        ));
        assert!(matches!(
            parse_units("threshold:3", "groups").unwrap(),
            UnitStrategy::ClusterGroups(ClusteringMethod::WeightThreshold { min_weight: 3 })
        ));
        let stoc = parse_units("stoc:0.4,0.6,3", "groups").unwrap();
        match stoc {
            UnitStrategy::ClusterGroups(ClusteringMethod::Stoc(p)) => {
                assert!((p.tau - 0.4).abs() < 1e-12);
                assert!((p.alpha - 0.6).abs() < 1e-12);
                assert_eq!(p.horizon, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_units("stoc:1,2", "groups").is_err());
        assert!(parse_units("threshold:x", "groups").is_err());
    }

    #[test]
    fn pairs_parse() {
        assert_eq!(
            parse_pairs("gender=F, region=north").unwrap(),
            vec![
                ("gender".to_string(), "F".to_string()),
                ("region".to_string(), "north".to_string()),
            ]
        );
        assert!(parse_pairs("").unwrap().is_empty());
        assert!(parse_pairs("gender").is_err());
        assert!(parse_pairs("=F").is_err());
        assert!(parse_pairs("gender=").is_err());
    }

    #[test]
    fn save_then_query_roundtrip() {
        let dir = std::env::temp_dir().join("scube_cli_save_query");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        std::fs::write(p("individuals.csv"), "id,gender\nd1,F\nd2,F\nd3,F\nd4,M\nd5,M\nd6,M\n")
            .unwrap();
        std::fs::write(p("groups.csv"), "id,sector\nc1,edu\nc2,agri\n").unwrap();
        std::fs::write(p("membership.csv"), "dir,comp\nd1,c1\nd2,c1\nd3,c1\nd4,c2\nd5,c2\nd6,c2\n")
            .unwrap();
        let base = [
            "--individuals",
            &p("individuals.csv"),
            "--id",
            "id",
            "--sa",
            "gender",
            "--groups",
            &p("groups.csv"),
            "--group-id",
            "id",
            "--membership",
            &p("membership.csv"),
            "--ind-col",
            "dir",
            "--grp-col",
            "comp",
            "--units",
            "sector",
            "--snapshot",
            &p("cube.scube"),
        ];
        let args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        let summary = run_save(&args).unwrap();
        assert!(summary.contains("cells"), "{summary}");

        // Point query: women are fully concentrated in the edu sector.
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--sa", "gender=F", "--breakdown"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let answer = run_query(&q).unwrap();
        assert!(answer.contains("gender=F | *"), "{answer}");
        assert!(answer.contains("D=1.0000"), "{answer}");
        assert!(answer.contains("edu: 3/3"), "{answer}");

        // The concurrent engine (--threads) serves the same answer,
        // breakdown included, bit for bit.
        let q: Vec<String> =
            ["--snapshot", &p("cube.scube"), "--sa", "gender=F", "--breakdown", "--threads", "4"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert_eq!(run_query(&q).unwrap(), answer);
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--top", "3", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run_query(&q).unwrap().contains("top 3 by dissimilarity"));

        // Top-k and slice render without error.
        let q: Vec<String> =
            ["--snapshot", &p("cube.scube"), "--top", "3"].iter().map(|s| s.to_string()).collect();
        assert!(run_query(&q).unwrap().contains("top 3 by dissimilarity"));
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--slice", "gender=F"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run_query(&q).unwrap().contains("gender=F"));

        // A flag whose value went missing must error, not silently answer
        // the apex cell; --breakdown without a point query must error too.
        for bad in [
            vec!["--snapshot", &p("cube.scube"), "--sa"],
            vec!["--snapshot", &p("cube.scube"), "--top"],
            vec!["--snapshot", &p("cube.scube"), "--slice"],
            vec!["--snapshot", &p("cube.scube"), "--breakdown"],
            vec!["--snapshot", &p("cube.scube"), "--rank", "gini"],
            vec!["--snapshot", &p("cube.scube"), "--min-total", "5"],
            vec!["--snapshot", &p("cube.scube"), "--top", "3", "--threads"],
            vec!["--snapshot", &p("cube.scube"), "--top", "3", "--threads", "0"],
            vec!["--snapshot", &p("cube.scube"), "--top", "3", "--threads", "x"],
            // Role confusion: sector is a unit/context-side attribute.
            vec!["--snapshot", &p("cube.scube"), "--ca", "gender=F"],
        ] {
            let q: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(run_query(&q).is_err(), "{q:?} should be rejected");
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn final_table_ingest_and_mmap_query_roundtrip() {
        let dir = std::env::temp_dir().join("scube_cli_final_table");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        std::fs::write(
            p("rows.csv"),
            "gender,unitID\nF,edu\nF,edu\nF,edu\nM,agri\nM,agri\nM,agri\n",
        )
        .unwrap();

        // The tabular shortcut streams the CSV through the record visitor.
        let args: Vec<String> =
            ["--final-table", &p("rows.csv"), "--sa", "gender", "--snapshot", &p("cube.scube")]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let summary = run_save(&args).unwrap();
        assert!(summary.contains("cells"), "{summary}");

        // Heap and mapped serving answer identically.
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--sa", "gender=F"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let heap_answer = run_query(&q).unwrap();
        assert!(heap_answer.contains("D=1.0000"), "{heap_answer}");
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--mmap", "--sa", "gender=F"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run_query(&q).unwrap(), heap_answer, "mapped serving must match");

        // The run verb takes the same shortcut and writes reports.
        let args: Vec<String> =
            ["--final-table", &p("rows.csv"), "--sa", "gender", "--out", &p("out")]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert!(run(&args).unwrap().contains("2 units"));
        assert!(dir.join("out").join("cube.csv").exists());

        // Bad shortcut invocations error.
        for bad in [
            vec!["--final-table", &p("rows.csv"), "--snapshot", &p("x.scube")], // no --sa
            vec![
                "--final-table",
                &p("rows.csv"),
                "--sa",
                "gender",
                "--dates",
                "2000",
                "--snapshot",
                &p("x.scube"),
            ],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(run_save(&args).is_err(), "{args:?} should be rejected");
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunked_save_is_byte_identical_to_resident() {
        let dir = std::env::temp_dir().join("scube_cli_chunked");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        std::fs::write(
            p("rows.csv"),
            "gender,region,unitID\nF,north,edu\nF,north,edu\nF,south,edu\nM,south,agri\nM,north,agri\nM,south,agri\nF,south,agri\n",
        )
        .unwrap();

        let save = |extra: &[&str], out: &str| -> String {
            let mut v = vec![
                "--final-table".to_string(),
                p("rows.csv"),
                "--sa".to_string(),
                "gender".to_string(),
                "--ca".to_string(),
                "region".to_string(),
                "--snapshot".to_string(),
                p(out),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            run_save(&v).unwrap()
        };
        let resident = save(&[], "resident.scube");
        assert!(resident.contains("resident build"), "{resident}");
        // Chunk sizes smaller than, straddling, and larger than the table.
        for (chunk, out) in [("1", "c1.scube"), ("3", "c3.scube"), ("100", "c100.scube")] {
            let summary = save(&["--chunk-rows", chunk], out);
            assert!(summary.contains("chunked build"), "{summary}");
            assert!(summary.contains("peak chunk"), "{summary}");
            assert_eq!(
                std::fs::read(p(out)).unwrap(),
                std::fs::read(p("resident.scube")).unwrap(),
                "--chunk-rows {chunk} snapshot must be byte-identical to the resident build's"
            );
        }

        // The run verb writes reports through the same chunked path.
        let args: Vec<String> = [
            "--final-table",
            &p("rows.csv"),
            "--sa",
            "gender",
            "--ca",
            "region",
            "--chunk-rows",
            "2",
            "--out",
            &p("out"),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let summary = run(&args).unwrap();
        assert!(summary.contains("chunked build"), "{summary}");
        assert!(dir.join("out").join("cube.csv").exists());
        assert!(dir.join("out").join("summary.md").exists());
        // No final_table.csv on the chunked path: the horizontal table
        // never existed.
        assert!(!dir.join("out").join("final_table.csv").exists());

        // Bad invocations error.
        for bad in [
            vec!["--final-table", &p("rows.csv"), "--sa", "gender", "--chunk-rows", "0"],
            vec!["--final-table", &p("rows.csv"), "--sa", "gender", "--chunk-rows", "x"],
            vec!["--final-table", &p("rows.csv"), "--sa", "gender", "--chunk-rows"],
        ] {
            let mut v: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            v.extend(["--snapshot".to_string(), p("x.scube")]);
            assert!(run_save(&v).is_err(), "{v:?} should be rejected");
        }
        // --chunk-rows without --final-table is a role error.
        let v: Vec<String> = ["--chunk-rows", "8", "--units", "sector", "--out", &p("out2")]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&v).unwrap_err();
        assert!(err.to_string().contains("--final-table"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn measure_subset_and_significance_roundtrip() {
        let dir = std::env::temp_dir().join("scube_cli_measures");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        std::fs::write(
            p("rows.csv"),
            "gender,unitID\nF,edu\nF,edu\nF,edu\nM,agri\nM,agri\nM,agri\n",
        )
        .unwrap();
        let q = |args: &[&str]| -> Result<String> {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            run_query(&v)
        };

        // A subset build persists as snapshot v5.
        let args: Vec<String> = [
            "--final-table",
            &p("rows.csv"),
            "--sa",
            "gender",
            "--index",
            "gini,isolation",
            "--snapshot",
            &p("subset.scube"),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run_save(&args).unwrap();
        let bytes = std::fs::read(p("subset.scube")).unwrap();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 5, "subset saves as v5");

        // Point queries project one measure; unselected measures read as
        // absent from the subset store.
        let one =
            q(&["--snapshot", &p("subset.scube"), "--sa", "gender=F", "--index", "gini"]).unwrap();
        assert!(one.contains("G=1.0000"), "{one}");
        assert!(!one.contains("D="), "{one}");
        let gone =
            q(&["--snapshot", &p("subset.scube"), "--sa", "gender=F", "--index", "d"]).unwrap();
        assert!(gone.contains("D=-"), "{gone}");

        // --index doubles as the default --top ranking, and filters slices.
        let top = q(&["--snapshot", &p("subset.scube"), "--top", "2", "--index", "gini"]).unwrap();
        assert!(top.contains("top 2 by gini"), "{top}");
        let slice = q(&["--snapshot", &p("subset.scube"), "--slice", "gender=F", "--index", "xpx"])
            .unwrap();
        assert!(slice.contains("xPx="), "{slice}");

        // A full-suite snapshot serves --significance: deterministic
        // permutation p-values per defined index, or just the --index one.
        let args: Vec<String> =
            ["--final-table", &p("rows.csv"), "--sa", "gender", "--snapshot", &p("full.scube")]
                .iter()
                .map(|s| s.to_string())
                .collect();
        run_save(&args).unwrap();
        let sig =
            q(&["--snapshot", &p("full.scube"), "--sa", "gender=F", "--significance"]).unwrap();
        assert!(sig.contains("significance dissimilarity:"), "{sig}");
        assert!(sig.contains("p="), "{sig}");
        let sig_one = q(&[
            "--snapshot",
            &p("full.scube"),
            "--sa",
            "gender=F",
            "--significance",
            "--index",
            "gini",
        ])
        .unwrap();
        assert!(sig_one.contains("significance gini:"), "{sig_one}");
        assert!(!sig_one.contains("significance dissimilarity:"), "{sig_one}");
        // Identical on repeat — the test seed is fixed.
        assert_eq!(
            q(&["--snapshot", &p("full.scube"), "--sa", "gender=F", "--significance"]).unwrap(),
            sig
        );

        // Bad measure surfaces error, not a silent full answer.
        assert!(
            q(&["--snapshot", &p("full.scube"), "--sa", "gender=F", "--index", "bogus"]).is_err()
        );
        assert!(q(&["--snapshot", &p("full.scube"), "--significance"]).is_err());
        let bad_save: Vec<String> = [
            "--final-table",
            &p("rows.csv"),
            "--sa",
            "gender",
            "--index",
            "gini,bogus",
            "--snapshot",
            &p("x.scube"),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run_save(&bad_save).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_update_query_roundtrip() {
        let dir = std::env::temp_dir().join("scube_cli_update");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).display().to_string();
        std::fs::write(
            p("individuals.csv"),
            "id,gender\nd1,F\nd2,F\nd3,F\nd4,M\nd5,M\nd6,M\nd7,F\nd8,M\n",
        )
        .unwrap();
        std::fs::write(p("groups.csv"), "id,sector\nc1,edu\nc2,agri\n").unwrap();
        std::fs::write(p("membership.csv"), "dir,comp\nd1,c1\nd2,c1\nd3,c1\nd4,c2\nd5,c2\nd6,c2\n")
            .unwrap();
        let base = [
            "--individuals",
            &p("individuals.csv"),
            "--id",
            "id",
            "--sa",
            "gender",
            "--groups",
            &p("groups.csv"),
            "--group-id",
            "id",
            "--membership",
            &p("membership.csv"),
            "--ind-col",
            "dir",
            "--grp-col",
            "comp",
            "--units",
            "sector",
            "--snapshot",
            &p("cube.scube"),
        ];
        let args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        run_save(&args).unwrap();

        // Breaking news: a woman joins agri, a man joins edu.
        std::fs::write(p("delta.csv"), "gender,unitID\nF,agri\nM,edu\n").unwrap();
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--add", &p("delta.csv")]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let summary = run_update(&q).unwrap();
        assert!(summary.contains("+2 −0 rows"), "{summary}");

        // The patched snapshot answers with the grown population: women
        // are no longer fully concentrated in edu (D < 1).
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--sa", "gender=F", "--breakdown"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let answer = run_query(&q).unwrap();
        assert!(answer.contains("M=4 T=8"), "{answer}");
        assert!(answer.contains("edu: 3/4"), "{answer}");
        assert!(answer.contains("agri: 1/4"), "{answer}");
        assert!(!answer.contains("D=1.0000"), "{answer}");

        // Retraction: the two breaking-news rows leave again, restoring
        // the original snapshot bytes.
        let before = std::fs::read(p("cube.scube")).unwrap();
        std::fs::write(p("gone.csv"), "gender,unitID\nF,agri\nM,edu\n").unwrap();
        let q: Vec<String> =
            ["--snapshot", &p("cube.scube"), "--remove", &p("gone.csv"), "--threads", "2"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let summary = run_update(&q).unwrap();
        assert!(summary.contains("−2 rows"), "{summary}");
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--sa", "gender=F"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run_query(&q).unwrap().contains("D=1.0000"), "back to full concentration");
        // Re-apply the addition so the retract-then-re-add cycle is a
        // byte-level no-op on disk.
        let q: Vec<String> = ["--snapshot", &p("cube.scube"), "--add", &p("delta.csv")]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run_update(&q).unwrap();
        assert_eq!(std::fs::read(p("cube.scube")).unwrap(), before);

        // Bad invocations error instead of clobbering the snapshot.
        std::fs::write(p("bad_value.csv"), "gender,unitID\nX,edu\n").unwrap();
        std::fs::write(p("bad_unit.csv"), "gender,unitID\nF,mining\n").unwrap();
        std::fs::write(p("no_match.csv"), "gender,unitID\nM,agri\nM,agri\nM,agri\nM,agri\n")
            .unwrap();
        for bad in [
            vec!["--snapshot", &p("cube.scube")],
            vec!["--add", &p("delta.csv")],
            vec!["--snapshot", &p("cube.scube"), "--add", &p("delta.csv"), "--unit-col"],
            vec!["--snapshot", &p("cube.scube"), "--add", &p("missing.csv")],
            vec!["--snapshot", &p("cube.scube"), "--remove", &p("missing.csv")],
            // Retractions referencing values absent from the snapshot's
            // dictionary — or matching no remaining row — must error,
            // never silently no-op.
            vec!["--snapshot", &p("cube.scube"), "--remove", &p("bad_value.csv")],
            vec!["--snapshot", &p("cube.scube"), "--remove", &p("bad_unit.csv")],
            vec!["--snapshot", &p("cube.scube"), "--remove", &p("no_match.csv")],
            vec!["--snapshot", &p("cube.scube"), "--add", &p("delta.csv"), "--threads", "0"],
            vec!["--snapshot", &p("cube.scube"), "--add", &p("delta.csv"), "--threads", "x"],
            // Duplicate flags are ambiguous, not first-one-wins.
            vec![
                "--snapshot",
                &p("cube.scube"),
                "--add",
                &p("delta.csv"),
                "--add",
                &p("delta.csv"),
            ],
        ] {
            let q: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let snapshot_bytes = std::fs::read(p("cube.scube")).unwrap();
            assert!(run_update(&q).is_err(), "{q:?} should be rejected");
            assert_eq!(
                std::fs::read(p("cube.scube")).unwrap(),
                snapshot_bytes,
                "{q:?} must not clobber the snapshot"
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_flags_rejected() {
        let dup: Vec<String> =
            ["--sa", "gender=F", "--sa", "gender=M"].iter().map(|s| s.to_string()).collect();
        let err = Flags::new(&dup).expect_err("duplicate --sa must be rejected");
        assert!(err.to_string().contains("more than once"), "{err}");
        // A repeated boolean flag is just as ambiguous.
        let dup: Vec<String> = ["--closed", "--closed"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::new(&dup).is_err());
        // Values are not mistaken for flags, even when they repeat.
        let ok: Vec<String> =
            ["--sa", "x", "--ca", "x", "--closed"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::new(&ok).is_ok());
        // And the query path surfaces the rejection end to end.
        let q: Vec<String> = ["--snapshot", "nope.scube", "--top", "3", "--top", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run_query(&q).expect_err("duplicate --top must be rejected");
        assert!(err.to_string().contains("more than once"), "{err}");
    }

    #[test]
    fn flags_lookup() {
        let flags = Flags { args: vec!["--id".into(), "director".into(), "--closed".into()] };
        assert_eq!(flags.get("--id"), Some("director"));
        assert!(flags.has("--closed"));
        assert!(!flags.has("--parallel"));
        assert!(flags.require("--missing").is_err());
    }
}
