//! The `scube` command-line tool — the standalone wizard (paper Fig. 4)
//! as a CLI.
//!
//! ```text
//! scube --individuals directors.csv --id id --sa gender,age --ca residence \
//!       --groups companies.csv --group-id id --group-ca sector,region \
//!       --membership boards.csv --ind-col director --grp-col company \
//!       [--interval from,to] [--dates 1995,2000,2005] \
//!       --units sector | cc | threshold:2 | stoc:0.5,0.5,2 \
//!       [--side groups|individuals] [--min-shared 1] [--min-support 50] \
//!       [--closed] [--parallel] --out reports/
//! ```
//!
//! `--units` selects the scenario: a group attribute name (tabular units),
//! `cc` / `threshold:<w>` / `stoc:<tau>,<alpha>,<horizon>` (graph
//! clustering; `--side` picks which projection). Reports are written by the
//! Visualizer into `--out`. Multi-valued CSV columns are declared with a
//! `*` suffix, e.g. `--ca sectors*`.

use std::process::ExitCode;

use scube::prelude::*;
use scube_common::ScubeError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{}", USAGE);
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scube: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
scube — segregation discovery from relational and graph data

required:
  --individuals <csv>    individuals input (one row per person)
  --id <col>             individuals id column
  --sa <c1,c2*,...>      segregation-attribute columns ('*' = multi-valued)
  --groups <csv>         groups input (companies, schools, ...)
  --group-id <col>       groups id column
  --membership <csv>     membership edges input
  --ind-col <col>        membership column naming the individual
  --grp-col <col>        membership column naming the group
  --units <spec>         <group-attr> | cc | threshold:<w> | stoc:<tau>,<alpha>,<h> | labelprop
  --out <dir>            report output directory

optional:
  --ca <c1,...>          individual context-attribute columns
  --group-ca <c1,...>    group context-attribute columns
  --interval <from,to>   membership validity-interval columns
  --dates <y1,y2,...>    snapshot dates (temporal analysis)
  --side <groups|individuals>  projection side for graph units [groups]
  --min-shared <n>       projection weight threshold [1]
  --min-support <n>      minimum cube-cell population [1]
  --closed               materialize closed cells only
  --parallel             parallel cube construction
  --rank <index>         ranking index for top_contexts [dissimilarity]
";

struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| ScubeError::InvalidParameter(format!("missing required flag {name}")))
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
}

/// Split a `c1,c2*,c3` column list into `(name, multi_valued)` pairs.
fn columns(list: &str) -> Vec<(String, bool)> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s.strip_suffix('*') {
            Some(name) => (name.to_string(), true),
            None => (s.to_string(), false),
        })
        .collect()
}

fn parse_units(spec: &str, side: &str) -> Result<UnitStrategy> {
    let method = if spec == "cc" {
        Some(ClusteringMethod::ConnectedComponents)
    } else if let Some(w) = spec.strip_prefix("threshold:") {
        let w: u32 = w
            .parse()
            .map_err(|_| ScubeError::InvalidParameter(format!("bad threshold weight '{w}'")))?;
        Some(ClusteringMethod::WeightThreshold { min_weight: w })
    } else if spec == "labelprop" {
        Some(ClusteringMethod::LabelPropagation(Default::default()))
    } else if let Some(params) = spec.strip_prefix("stoc:") {
        let parts: Vec<&str> = params.split(',').collect();
        if parts.len() != 3 {
            return Err(ScubeError::InvalidParameter(
                "stoc spec must be stoc:<tau>,<alpha>,<horizon>".into(),
            ));
        }
        let parse_f = |s: &str| {
            s.parse::<f64>()
                .map_err(|_| ScubeError::InvalidParameter(format!("bad stoc number '{s}'")))
        };
        Some(ClusteringMethod::Stoc(StocParams {
            tau: parse_f(parts[0])?,
            alpha: parse_f(parts[1])?,
            horizon: parts[2].parse().map_err(|_| {
                ScubeError::InvalidParameter(format!("bad stoc horizon '{}'", parts[2]))
            })?,
            seed: 0xC1B7,
        }))
    } else {
        None
    };
    Ok(match method {
        Some(m) if side == "individuals" => UnitStrategy::ClusterIndividuals(m),
        Some(m) => UnitStrategy::ClusterGroups(m),
        None => UnitStrategy::GroupAttribute(spec.to_string()),
    })
}

fn run(args: &[String]) -> Result<String> {
    let flags = Flags { args: args.to_vec() };

    let mut ind_spec = IndividualsSpec::new(flags.require("--id")?);
    for (name, multi) in columns(flags.require("--sa")?) {
        ind_spec.sa_columns.push((name, multi));
    }
    for (name, multi) in columns(flags.get("--ca").unwrap_or("")) {
        ind_spec.ca_columns.push((name, multi));
    }

    let mut grp_spec = GroupsSpec::new(flags.require("--group-id")?);
    for (name, multi) in columns(flags.get("--group-ca").unwrap_or("")) {
        grp_spec.ca_columns.push((name, multi));
    }

    let mut mem_spec =
        MembershipSpec::new(flags.require("--ind-col")?, flags.require("--grp-col")?);
    if let Some(interval) = flags.get("--interval") {
        let cols = columns(interval);
        if cols.len() != 2 {
            return Err(ScubeError::InvalidParameter(
                "--interval needs exactly two columns: from,to".into(),
            ));
        }
        mem_spec = mem_spec.with_interval(cols[0].0.clone(), cols[1].0.clone());
    }

    let dates: Vec<i64> = match flags.get("--dates") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| ScubeError::InvalidParameter(format!("bad date '{}'", s.trim())))
            })
            .collect::<Result<_>>()?,
        None => Vec::new(),
    };

    let side = flags.get("--side").unwrap_or("groups");
    if !["groups", "individuals"].contains(&side) {
        return Err(ScubeError::InvalidParameter(format!("bad --side '{side}'")));
    }
    let units = parse_units(flags.require("--units")?, side)?;

    let min_support: u64 = flags
        .get("--min-support")
        .unwrap_or("1")
        .parse()
        .map_err(|_| ScubeError::InvalidParameter("bad --min-support".into()))?;
    let min_shared: u32 = flags
        .get("--min-shared")
        .unwrap_or("1")
        .parse()
        .map_err(|_| ScubeError::InvalidParameter("bad --min-shared".into()))?;
    let rank = flags
        .get("--rank")
        .map(|s| {
            SegIndex::parse(s)
                .ok_or_else(|| ScubeError::InvalidParameter(format!("unknown index '{s}'")))
        })
        .transpose()?
        .unwrap_or(SegIndex::Dissimilarity);

    let out_dir = flags.require("--out")?.to_string();

    let mut wizard = Wizard::new()
        .individuals_csv(flags.require("--individuals")?, ind_spec)
        .groups_csv(flags.require("--groups")?, grp_spec)
        .membership_csv(flags.require("--membership")?, mem_spec)
        .units(units)
        .min_shared(min_shared)
        .min_support(min_support)
        .parallel(flags.has("--parallel"));
    if flags.has("--closed") {
        wizard = wizard.materialize(Materialize::ClosedOnly);
    }

    if dates.is_empty() {
        let result = wizard.run()?;
        Visualizer::new(&out_dir).rank_by(rank).write_all(&result)?;
        Ok(format!(
            "wrote {out_dir}: {} rows, {} units, {} cells ({:?})",
            result.stats.n_rows,
            result.stats.n_units,
            result.stats.n_cells,
            result.timings.total()
        ))
    } else {
        let snapshots = wizard.dates(dates).run_snapshots()?;
        let mut lines = Vec::new();
        for (date, result) in &snapshots {
            let dir = format!("{out_dir}/{date}");
            Visualizer::new(&dir).rank_by(rank).write_all(result)?;
            lines.push(format!(
                "wrote {dir}: {} rows, {} units, {} cells",
                result.stats.n_rows, result.stats.n_units, result.stats.n_cells
            ));
        }
        Ok(lines.join("\n"))
    }
}

// Keep the argument helpers honest.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_parse_multi_flags() {
        assert_eq!(
            columns("gender,sectors*,age"),
            vec![
                ("gender".to_string(), false),
                ("sectors".to_string(), true),
                ("age".to_string(), false),
            ]
        );
        assert!(columns("").is_empty());
    }

    #[test]
    fn unit_specs_parse() {
        assert_eq!(
            parse_units("sector", "groups").unwrap(),
            UnitStrategy::GroupAttribute("sector".into())
        );
        assert!(matches!(
            parse_units("cc", "groups").unwrap(),
            UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents)
        ));
        assert!(matches!(
            parse_units("cc", "individuals").unwrap(),
            UnitStrategy::ClusterIndividuals(ClusteringMethod::ConnectedComponents)
        ));
        assert!(matches!(
            parse_units("threshold:3", "groups").unwrap(),
            UnitStrategy::ClusterGroups(ClusteringMethod::WeightThreshold { min_weight: 3 })
        ));
        let stoc = parse_units("stoc:0.4,0.6,3", "groups").unwrap();
        match stoc {
            UnitStrategy::ClusterGroups(ClusteringMethod::Stoc(p)) => {
                assert!((p.tau - 0.4).abs() < 1e-12);
                assert!((p.alpha - 0.6).abs() < 1e-12);
                assert_eq!(p.horizon, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_units("stoc:1,2", "groups").is_err());
        assert!(parse_units("threshold:x", "groups").is_err());
    }

    #[test]
    fn flags_lookup() {
        let flags = Flags { args: vec!["--id".into(), "director".into(), "--closed".into()] };
        assert_eq!(flags.get("--id"), Some("director"));
        assert!(flags.has("--closed"));
        assert!(!flags.has("--parallel"));
        assert!(flags.require("--missing").is_err());
    }
}
