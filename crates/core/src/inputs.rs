//! The four SCube inputs (Fig. 2): `individuals`, `groups`, `membership`,
//! and snapshot `dates`.
//!
//! Inputs arrive as CSV-backed [`Relation`]s plus role specifications
//! declaring which column is which. [`Dataset`] bundles them, validates the
//! cross-references (memberships must point at known individuals/groups)
//! and assigns the dense node ids the graph layer uses.

use scube_common::{FxHashMap, Result, ScubeError};
use scube_data::Relation;
use scube_graph::{BipartiteGraph, Membership};

/// Roles of the `individuals` input columns.
///
/// Individuals carry both segregation attributes (their personal traits)
/// and context attributes (e.g. residence); groups carry only context
/// attributes — "groups are not subject to segregation" (§3).
#[derive(Debug, Clone, Default)]
pub struct IndividualsSpec {
    /// The id column.
    pub id_column: String,
    /// Segregation-attribute columns `(name, multi_valued)`.
    pub sa_columns: Vec<(String, bool)>,
    /// Context-attribute columns `(name, multi_valued)`.
    pub ca_columns: Vec<(String, bool)>,
}

impl IndividualsSpec {
    /// Spec with the given id column.
    pub fn new(id_column: impl Into<String>) -> Self {
        IndividualsSpec { id_column: id_column.into(), ..Default::default() }
    }

    /// Add a single-valued SA column.
    pub fn sa(mut self, name: impl Into<String>) -> Self {
        self.sa_columns.push((name.into(), false));
        self
    }

    /// Add a single-valued CA column.
    pub fn ca(mut self, name: impl Into<String>) -> Self {
        self.ca_columns.push((name.into(), false));
        self
    }

    /// Add a multi-valued CA column (`;`-separated cells).
    pub fn ca_multi(mut self, name: impl Into<String>) -> Self {
        self.ca_columns.push((name.into(), true));
        self
    }
}

/// Roles of the `groups` input columns (context attributes only).
#[derive(Debug, Clone, Default)]
pub struct GroupsSpec {
    /// The id column.
    pub id_column: String,
    /// Context-attribute columns `(name, multi_valued)`.
    pub ca_columns: Vec<(String, bool)>,
}

impl GroupsSpec {
    /// Spec with the given id column.
    pub fn new(id_column: impl Into<String>) -> Self {
        GroupsSpec { id_column: id_column.into(), ..Default::default() }
    }

    /// Add a single-valued CA column.
    pub fn ca(mut self, name: impl Into<String>) -> Self {
        self.ca_columns.push((name.into(), false));
        self
    }

    /// Add a multi-valued CA column.
    pub fn ca_multi(mut self, name: impl Into<String>) -> Self {
        self.ca_columns.push((name.into(), true));
        self
    }
}

/// Roles of the `membership` input columns.
#[derive(Debug, Clone)]
pub struct MembershipSpec {
    /// Column holding the individual id.
    pub individual_column: String,
    /// Column holding the group id.
    pub group_column: String,
    /// Optional validity-interval columns (integer time units, e.g. years).
    pub interval_columns: Option<(String, String)>,
}

impl MembershipSpec {
    /// Untimed membership spec.
    pub fn new(individual: impl Into<String>, group: impl Into<String>) -> Self {
        MembershipSpec {
            individual_column: individual.into(),
            group_column: group.into(),
            interval_columns: None,
        }
    }

    /// Declare validity-interval columns (empty cells = unbounded side).
    pub fn with_interval(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.interval_columns = Some((from.into(), to.into()));
        self
    }
}

/// The validated, id-resolved input bundle.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The `individuals` relation.
    pub individuals: Relation,
    /// Column roles of `individuals`.
    pub individuals_spec: IndividualsSpec,
    /// The `groups` relation.
    pub groups: Relation,
    /// Column roles of `groups`.
    pub groups_spec: GroupsSpec,
    /// The bipartite membership graph over dense ids (row index order of
    /// the `individuals` / `groups` relations).
    pub bipartite: BipartiteGraph,
    /// Snapshot dates for temporal analysis (empty = untimed analysis).
    pub dates: Vec<i64>,
}

impl Dataset {
    /// Assemble and validate a dataset.
    ///
    /// Dense individual ids are the row indices of `individuals`, dense
    /// group ids the row indices of `groups`; memberships referencing
    /// unknown ids are rejected.
    pub fn new(
        individuals: Relation,
        individuals_spec: IndividualsSpec,
        groups: Relation,
        groups_spec: GroupsSpec,
        membership: &Relation,
        membership_spec: &MembershipSpec,
        dates: Vec<i64>,
    ) -> Result<Dataset> {
        let ind_lookup = build_lookup(&individuals, &individuals_spec.id_column, "individuals")?;
        let grp_lookup = build_lookup(&groups, &groups_spec.id_column, "groups")?;

        let ind_col = column(membership, &membership_spec.individual_column, "membership")?;
        let grp_col = column(membership, &membership_spec.group_column, "membership")?;
        let interval_cols = match &membership_spec.interval_columns {
            Some((f, t)) => {
                Some((column(membership, f, "membership")?, column(membership, t, "membership")?))
            }
            None => None,
        };

        let mut bipartite = BipartiteGraph::new(individuals.len() as u32, groups.len() as u32);
        for (row_idx, row) in membership.rows().iter().enumerate() {
            let ind = *ind_lookup.get(row[ind_col].as_str()).ok_or_else(|| {
                ScubeError::Inconsistent(format!(
                    "membership row {}: unknown individual '{}'",
                    row_idx + 1,
                    row[ind_col]
                ))
            })?;
            let grp = *grp_lookup.get(row[grp_col].as_str()).ok_or_else(|| {
                ScubeError::Inconsistent(format!(
                    "membership row {}: unknown group '{}'",
                    row_idx + 1,
                    row[grp_col]
                ))
            })?;
            let membership_edge = match interval_cols {
                Some((fc, tc)) => {
                    let from = parse_time(&row[fc], i64::MIN, row_idx)?;
                    let to = parse_time(&row[tc], i64::MAX, row_idx)?;
                    Membership::timed(ind, grp, from, to)
                }
                None => Membership::untimed(ind, grp),
            };
            bipartite.add(membership_edge);
        }
        Ok(Dataset { individuals, individuals_spec, groups, groups_spec, bipartite, dates })
    }

    /// Number of individuals.
    pub fn num_individuals(&self) -> usize {
        self.individuals.len()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The dataset restricted to memberships active at `date`.
    pub fn snapshot(&self, date: i64) -> Dataset {
        Dataset {
            individuals: self.individuals.clone(),
            individuals_spec: self.individuals_spec.clone(),
            groups: self.groups.clone(),
            groups_spec: self.groups_spec.clone(),
            bipartite: self.bipartite.snapshot(date),
            dates: Vec::new(),
        }
    }
}

fn build_lookup<'a>(
    rel: &'a Relation,
    id_column: &str,
    what: &str,
) -> Result<FxHashMap<&'a str, u32>> {
    let col = column(rel, id_column, what)?;
    let mut lookup: FxHashMap<&str, u32> = FxHashMap::default();
    for (i, row) in rel.rows().iter().enumerate() {
        if lookup.insert(row[col].as_str(), i as u32).is_some() {
            return Err(ScubeError::Inconsistent(format!("{what}: duplicate id '{}'", row[col])));
        }
    }
    Ok(lookup)
}

fn column(rel: &Relation, name: &str, what: &str) -> Result<usize> {
    rel.column_index(name)
        .ok_or_else(|| ScubeError::Schema(format!("{what}: missing column '{name}'")))
}

fn parse_time(cell: &str, default: i64, row: usize) -> Result<i64> {
    let cell = cell.trim();
    if cell.is_empty() {
        return Ok(default);
    }
    cell.parse().map_err(|_| ScubeError::Csv {
        line: row as u64 + 1,
        msg: format!("invalid time value '{cell}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[&str], rows: &[&[&str]]) -> Relation {
        let mut r = Relation::new(cols.iter().map(|s| s.to_string()).collect()).unwrap();
        for row in rows {
            r.push_row(row.iter().map(|s| s.to_string()).collect()).unwrap();
        }
        r
    }

    fn sample() -> Dataset {
        let individuals = rel(
            &["id", "gender", "res"],
            &[&["d1", "F", "north"], &["d2", "M", "south"], &["d3", "F", "north"]],
        );
        let groups = rel(&["id", "sector"], &[&["c1", "edu"], &["c2", "agri"]]);
        let membership = rel(
            &["dir", "comp", "from", "to"],
            &[&["d1", "c1", "2000", "2005"], &["d2", "c1", "", ""], &["d3", "c2", "2003", ""]],
        );
        Dataset::new(
            individuals,
            IndividualsSpec::new("id").sa("gender").ca("res"),
            groups,
            GroupsSpec::new("id").ca("sector"),
            &membership,
            &MembershipSpec::new("dir", "comp").with_interval("from", "to"),
            vec![2000, 2004],
        )
        .unwrap()
    }

    #[test]
    fn builds_bipartite_with_dense_ids() {
        let d = sample();
        assert_eq!(d.num_individuals(), 3);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.bipartite.memberships().len(), 3);
        let m = d.bipartite.memberships()[0];
        assert_eq!((m.individual, m.group, m.from, m.to), (0, 0, 2000, 2005));
        // Empty interval cells become unbounded.
        let m = d.bipartite.memberships()[1];
        assert_eq!((m.from, m.to), (i64::MIN, i64::MAX));
        let m = d.bipartite.memberships()[2];
        assert_eq!((m.from, m.to), (2003, i64::MAX));
    }

    #[test]
    fn snapshot_restricts_memberships() {
        let d = sample();
        assert_eq!(d.snapshot(2004).bipartite.memberships().len(), 3);
        assert_eq!(d.snapshot(2001).bipartite.memberships().len(), 2);
        assert_eq!(d.snapshot(1990).bipartite.memberships().len(), 1);
    }

    #[test]
    fn unknown_individual_rejected() {
        let individuals = rel(&["id", "gender"], &[&["d1", "F"]]);
        let groups = rel(&["id"], &[&["c1"]]);
        let membership = rel(&["dir", "comp"], &[&["ghost", "c1"]]);
        let err = Dataset::new(
            individuals,
            IndividualsSpec::new("id").sa("gender"),
            groups,
            GroupsSpec::new("id"),
            &membership,
            &MembershipSpec::new("dir", "comp"),
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown individual"));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let individuals = rel(&["id"], &[&["d1"], &["d1"]]);
        let groups = rel(&["id"], &[&["c1"]]);
        let membership = rel(&["dir", "comp"], &[]);
        let err = Dataset::new(
            individuals,
            IndividualsSpec::new("id"),
            groups,
            GroupsSpec::new("id"),
            &membership,
            &MembershipSpec::new("dir", "comp"),
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate id"));
    }

    #[test]
    fn bad_time_value_rejected() {
        let individuals = rel(&["id"], &[&["d1"]]);
        let groups = rel(&["id"], &[&["c1"]]);
        let membership = rel(&["dir", "comp", "from", "to"], &[&["d1", "c1", "xx", ""]]);
        let err = Dataset::new(
            individuals,
            IndividualsSpec::new("id"),
            groups,
            GroupsSpec::new("id"),
            &membership,
            &MembershipSpec::new("dir", "comp").with_interval("from", "to"),
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("invalid time"));
    }
}
