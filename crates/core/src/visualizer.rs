//! The Visualizer module (Fig. 2): write the analysis artefacts to disk.
//!
//! The original tool emits an OOXML workbook (`scube.xlsx`) opened in
//! Excel/LibreOffice; we emit the equivalent as a CSV "workbook" — one file
//! per sheet — plus plain-text pivots, all machine-readable:
//!
//! * `cube.csv` — one row per cell, all indexes (Fig. 5 top);
//! * `top_contexts.csv` — contexts ranked by an index;
//! * `final_table.csv` — the Fig. 3 final table;
//! * `summary.md` — run statistics and the Fig. 1-style grid when the
//!   schema has at least two SA attributes and one CA attribute.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use scube_common::{Result, ScubeError};
use scube_cube::report;
use scube_segindex::SegIndex;

use crate::pipeline::{ChunkedBuild, ScubeResult};
use crate::table_builder::final_table_relation;

/// Writes a [`ScubeResult`] as a directory of reports.
#[derive(Debug, Clone)]
pub struct Visualizer {
    out_dir: PathBuf,
    /// Index used for ranking in `top_contexts.csv`.
    pub rank_index: SegIndex,
    /// Minimum cell population for the top-contexts report.
    pub min_total: u64,
    /// Number of top contexts to keep (0 = all).
    pub top_k: usize,
}

impl Visualizer {
    /// Visualizer writing into `out_dir` (created if missing).
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        Visualizer {
            out_dir: out_dir.into(),
            rank_index: SegIndex::Dissimilarity,
            min_total: 10,
            top_k: 50,
        }
    }

    /// Set the ranking index.
    pub fn rank_by(mut self, index: SegIndex) -> Self {
        self.rank_index = index;
        self
    }

    /// Set the population floor for ranked contexts.
    pub fn min_total(mut self, min_total: u64) -> Self {
        self.min_total = min_total;
        self
    }

    /// Write every artefact; returns the paths written.
    pub fn write_all(&self, result: &ScubeResult) -> Result<Vec<PathBuf>> {
        std::fs::create_dir_all(&self.out_dir)
            .map_err(|e| ScubeError::io_at(self.out_dir.display().to_string(), e))?;
        let mut written = Vec::new();

        // Sheet 1: the cube.
        written.push(self.write_file("cube.csv", &report::to_csv(&result.cube))?);

        // Sheet 2: ranked contexts.
        let top = report::top_contexts(&result.cube, self.rank_index, self.top_k, self.min_total);
        let mut rows = vec![vec![
            "context".to_string(),
            self.rank_index.name().to_string(),
            "M".to_string(),
            "T".to_string(),
        ]];
        for (coords, values, x) in &top {
            rows.push(vec![
                result.cube.labels().describe(coords),
                format!("{x:.4}"),
                values.minority.to_string(),
                values.total.to_string(),
            ]);
        }
        let csv = scube_common::csv::to_string(rows.iter().map(|r| r.iter()));
        written.push(self.write_file("top_contexts.csv", &csv)?);

        // Sheet 3: the final table.
        let mut buf = Vec::new();
        final_table_relation(&result.final_table).write_csv(&mut buf)?;
        written.push(self.write_file(
            "final_table.csv",
            std::str::from_utf8(&buf).expect("CSV output is UTF-8"),
        )?);

        // Summary with run stats and a Fig. 1 grid when meaningful.
        written.push(self.write_file(
            "summary.md",
            &self.summary(&result.cube, &result.stats, &result.timings),
        )?);
        Ok(written)
    }

    /// Write the artefacts of a chunked (bounded-memory) build. Same
    /// output as [`Self::write_all`] minus `final_table.csv` — dumping the
    /// horizontal table back out is exactly the residency the chunked path
    /// exists to avoid.
    pub fn write_chunked(&self, result: &ChunkedBuild) -> Result<Vec<PathBuf>> {
        std::fs::create_dir_all(&self.out_dir)
            .map_err(|e| ScubeError::io_at(self.out_dir.display().to_string(), e))?;
        let mut written = Vec::new();
        written.push(self.write_file("cube.csv", &report::to_csv(&result.cube))?);
        let top = report::top_contexts(&result.cube, self.rank_index, self.top_k, self.min_total);
        let mut rows = vec![vec![
            "context".to_string(),
            self.rank_index.name().to_string(),
            "M".to_string(),
            "T".to_string(),
        ]];
        for (coords, values, x) in &top {
            rows.push(vec![
                result.cube.labels().describe(coords),
                format!("{x:.4}"),
                values.minority.to_string(),
                values.total.to_string(),
            ]);
        }
        let csv = scube_common::csv::to_string(rows.iter().map(|r| r.iter()));
        written.push(self.write_file("top_contexts.csv", &csv)?);
        written.push(self.write_file(
            "summary.md",
            &self.summary(&result.cube, &result.stats, &result.timings),
        )?);
        Ok(written)
    }

    fn summary(
        &self,
        cube: &scube_cube::SegregationCube,
        stats: &crate::stats::RunStats,
        timings: &crate::stats::StageTimings,
    ) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# SCube run summary\n");
        let _ = writeln!(s, "| metric | value |");
        let _ = writeln!(s, "|--------|-------|");
        let _ = writeln!(s, "| individuals | {} |", stats.n_individuals);
        let _ = writeln!(s, "| groups | {} |", stats.n_groups);
        let _ = writeln!(s, "| memberships | {} |", stats.n_memberships);
        let _ = writeln!(s, "| final-table rows | {} |", stats.n_rows);
        let _ = writeln!(s, "| organizational units | {} |", stats.n_units);
        let _ = writeln!(s, "| cube cells | {} |", stats.n_cells);
        let _ = writeln!(s, "| isolated nodes | {} |", stats.n_isolated);
        let t = timings;
        let _ = writeln!(s, "| projection time | {:?} |", t.projection);
        let _ = writeln!(s, "| clustering time | {:?} |", t.clustering);
        let _ = writeln!(s, "| join time | {:?} |", t.join);
        let _ = writeln!(s, "| cube time | {:?} |", t.cube);

        // A Fig. 1-style grid over the first two SA attributes and the
        // first CA attribute when available (with no CA attribute the grid
        // degenerates to the ⋆ context row, which is still informative).
        let labels = cube.labels();
        if labels.sa_attrs.len() >= 2 {
            let ca_attr = labels.ca_attrs.first().map(String::as_str).unwrap_or("context");
            let _ = writeln!(s, "\n## Dissimilarity grid (Fig. 1 layout)\n");
            let _ = writeln!(s, "```");
            s.push_str(&report::fig1_grid(
                cube,
                &labels.sa_attrs[0],
                &labels.sa_attrs[1],
                ca_attr,
                SegIndex::Dissimilarity,
            ));
            let _ = writeln!(s, "```");
        }
        s
    }

    fn write_file(&self, name: &str, content: &str) -> Result<PathBuf> {
        let path = self.out_dir.join(name);
        std::fs::write(&path, content)
            .map_err(|e| ScubeError::io_at(path.display().to_string(), e))?;
        Ok(path)
    }
}

/// Default output directory next to a dataset path (mirrors the wizard's
/// "launch office suite on the output" step, minus the office suite).
pub fn default_output_dir(input: &Path) -> PathBuf {
    input.with_extension("scube")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::{Dataset, GroupsSpec, IndividualsSpec, MembershipSpec};
    use crate::pipeline::{run, ScubeConfig};
    use crate::table_builder::UnitStrategy;
    use scube_data::Relation;

    fn rel(cols: &[&str], rows: &[&[&str]]) -> Relation {
        let mut r = Relation::new(cols.iter().map(|s| s.to_string()).collect()).unwrap();
        for row in rows {
            r.push_row(row.iter().map(|s| s.to_string()).collect()).unwrap();
        }
        r
    }

    #[test]
    fn writes_all_artefacts() {
        let individuals = rel(
            &["id", "gender", "age"],
            &[&["d1", "F", "young"], &["d2", "M", "old"], &["d3", "F", "old"]],
        );
        let groups = rel(&["id", "sector"], &[&["c1", "edu"], &["c2", "agri"]]);
        let membership = rel(&["dir", "comp"], &[&["d1", "c1"], &["d2", "c2"], &["d3", "c1"]]);
        let dataset = Dataset::new(
            individuals,
            IndividualsSpec::new("id").sa("gender").sa("age"),
            groups,
            GroupsSpec::new("id").ca("sector"),
            &membership,
            &MembershipSpec::new("dir", "comp"),
            vec![],
        )
        .unwrap();
        let result =
            run(&dataset, &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into())))
                .unwrap();

        let dir = std::env::temp_dir().join(format!("scube_viz_test_{}", std::process::id()));
        let written = Visualizer::new(&dir).min_total(1).write_all(&result).unwrap();
        assert_eq!(written.len(), 4);
        for path in &written {
            let content = std::fs::read_to_string(path).unwrap();
            assert!(!content.is_empty(), "{} is empty", path.display());
        }
        let summary = std::fs::read_to_string(dir.join("summary.md")).unwrap();
        assert!(summary.contains("organizational units"));
        assert!(summary.contains("Dissimilarity grid"));
        let cube_csv = std::fs::read_to_string(dir.join("cube.csv")).unwrap();
        assert!(cube_csv.lines().next().unwrap().contains("gender"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_output_dir_swaps_extension() {
        assert_eq!(
            default_output_dir(Path::new("/data/italy.csv")),
            PathBuf::from("/data/italy.scube")
        );
    }
}
