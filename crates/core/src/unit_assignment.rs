//! The GraphClustering module (Fig. 2): turn a projected graph into
//! organizational units.
//!
//! SCube offers three clustering methods (§3): plain connected components,
//! removal of light edges followed by connected components (the method
//! designed in the companion journal paper to break the giant component),
//! and the SToC attributed clustering algorithm for very large graphs.

use scube_graph::{
    connected_components, label_propagation, stoc, Clustering, Graph, LabelPropParams,
    NodeAttributes, StocParams,
};

/// Clustering method selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusteringMethod {
    /// Connected components (BFS).
    ConnectedComponents,
    /// Drop edges with weight below `min_weight`, then components.
    WeightThreshold {
        /// Minimum edge weight kept.
        min_weight: u32,
    },
    /// SToC attributed clustering.
    Stoc(StocParams),
    /// Weighted label propagation (extension beyond the paper's three
    /// methods; near-linear community detection).
    LabelPropagation(LabelPropParams),
}

impl ClusteringMethod {
    /// Short method name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ClusteringMethod::ConnectedComponents => "connected-components",
            ClusteringMethod::WeightThreshold { .. } => "weight-threshold",
            ClusteringMethod::Stoc(_) => "stoc",
            ClusteringMethod::LabelPropagation(_) => "label-propagation",
        }
    }

    /// Run the method over a graph with node attributes.
    pub fn cluster(&self, graph: &Graph, attrs: &NodeAttributes) -> Clustering {
        match *self {
            ClusteringMethod::ConnectedComponents => connected_components(graph, 0),
            ClusteringMethod::WeightThreshold { min_weight } => {
                connected_components(graph, min_weight)
            }
            ClusteringMethod::Stoc(params) => stoc(graph, attrs, params),
            ClusteringMethod::LabelPropagation(params) => label_propagation(graph, params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scube_graph::GraphBuilder;

    fn bridge_graph() -> Graph {
        // Two triangles joined by one light edge.
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 3);
        }
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn connected_components_sees_one_cluster() {
        let g = bridge_graph();
        let c = ClusteringMethod::ConnectedComponents.cluster(&g, &NodeAttributes::empty(6));
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn weight_threshold_breaks_the_bridge() {
        let g = bridge_graph();
        let c = ClusteringMethod::WeightThreshold { min_weight: 2 }
            .cluster(&g, &NodeAttributes::empty(6));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.of(0), c.of(2));
        assert_ne!(c.of(2), c.of(3));
    }

    #[test]
    fn stoc_runs_through_selector() {
        let g = bridge_graph();
        let attrs =
            NodeAttributes::from_rows(vec![vec![0], vec![0], vec![0], vec![1], vec![1], vec![1]]);
        let c = ClusteringMethod::Stoc(StocParams::default()).cluster(&g, &attrs);
        assert_eq!(c.num_nodes(), 6);
        assert_eq!(c.sizes().iter().sum::<u32>(), 6);
    }

    #[test]
    fn names() {
        assert_eq!(ClusteringMethod::ConnectedComponents.name(), "connected-components");
        assert_eq!(ClusteringMethod::WeightThreshold { min_weight: 2 }.name(), "weight-threshold");
        assert_eq!(ClusteringMethod::Stoc(StocParams::default()).name(), "stoc");
        assert_eq!(
            ClusteringMethod::LabelPropagation(LabelPropParams::default()).name(),
            "label-propagation"
        );
    }

    #[test]
    fn label_propagation_separates_dense_blocks() {
        let g = bridge_graph();
        let c = ClusteringMethod::LabelPropagation(LabelPropParams::default())
            .cluster(&g, &NodeAttributes::empty(6));
        // The two triangles are denser than the bridge: two communities.
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.of(0), c.of(2));
        assert_eq!(c.of(3), c.of(5));
    }
}
