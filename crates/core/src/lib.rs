#![warn(missing_docs)]
//! # SCube: a tool for segregation discovery
//!
//! Rust reproduction of *SCube: A Tool for Segregation Discovery* (Baroni &
//! Ruggieri, EDBT 2019) and the `SegregationDataCubeBuilder` algorithm of
//! its companion journal paper. SCube discovers **contexts of social
//! segregation** — instead of hypothesis-testing one suspected context, it
//! materializes a multi-dimensional *segregation data cube* whose
//! dimensions are segregation attributes (sex, age, …) and context
//! attributes (region, sector, …) and whose cells hold social-science
//! segregation indexes over organizational units.
//!
//! ## Pipeline (paper Fig. 2)
//!
//! ```text
//! individuals ─┐
//! groups      ─┼─► GraphBuilder ─► GraphClustering ─► TableBuilder ─► SegregationDataCubeBuilder ─► Visualizer
//! membership  ─┤    (projection)     (units)           (finalTable)      (cube)                       (reports)
//! dates       ─┘
//! ```
//!
//! * [`inputs`] — the four inputs and the validated [`inputs::Dataset`];
//! * [`table_builder`] — projections + unit strategies (the three demo
//!   scenarios) + the final-table join;
//! * [`unit_assignment`] — the clustering methods (connected components,
//!   weight threshold, SToC);
//! * [`pipeline`] — one-call orchestration, including temporal snapshots;
//! * [`visualizer`] — CSV/Markdown report output;
//! * [`wizard`] — the fluent, step-guided front-end.
//!
//! ## Quick start
//!
//! ```
//! use scube::prelude::*;
//!
//! // A tiny population: individuals with a gender SA, companies with a
//! // sector CA, memberships linking them.
//! let mut individuals = Relation::new(vec!["id".into(), "gender".into()]).unwrap();
//! for (id, g) in [("d1", "F"), ("d2", "M"), ("d3", "F")] {
//!     individuals.push_row(vec![id.into(), g.into()]).unwrap();
//! }
//! let mut groups = Relation::new(vec!["id".into(), "sector".into()]).unwrap();
//! for (id, s) in [("c1", "edu"), ("c2", "agri")] {
//!     groups.push_row(vec![id.into(), s.into()]).unwrap();
//! }
//! let mut membership = Relation::new(vec!["dir".into(), "comp".into()]).unwrap();
//! for (d, c) in [("d1", "c1"), ("d2", "c2"), ("d3", "c1")] {
//!     membership.push_row(vec![d.into(), c.into()]).unwrap();
//! }
//!
//! let result = Wizard::new()
//!     .individuals(individuals, IndividualsSpec::new("id").sa("gender"))
//!     .groups(groups, GroupsSpec::new("id").ca("sector"))
//!     .membership(membership, MembershipSpec::new("dir", "comp"))
//!     .units(UnitStrategy::GroupAttribute("sector".into()))
//!     .run()
//!     .unwrap();
//!
//! // Women are fully concentrated in the edu sector here:
//! let cell = result.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
//! assert_eq!(cell.dissimilarity, Some(1.0));
//! ```

pub mod daemon;
pub mod inputs;
pub mod pipeline;
pub mod stats;
pub mod table_builder;
pub mod unit_assignment;
pub mod visualizer;
pub mod wizard;

pub use daemon::{Daemon, DaemonConfig};
pub use inputs::{Dataset, GroupsSpec, IndividualsSpec, MembershipSpec};
pub use pipeline::{
    run, run_final_table, run_final_table_csv, run_final_table_csv_chunked, run_snapshots,
    snapshot, snapshot_chunked, update, update_snapshot_file, update_threads, ChunkedBuild,
    ScubeConfig, ScubeResult,
};
pub use table_builder::{build_final_table, final_table_relation, FinalTable, UnitStrategy};
pub use unit_assignment::ClusteringMethod;
pub use visualizer::Visualizer;
pub use wizard::Wizard;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::inputs::{Dataset, GroupsSpec, IndividualsSpec, MembershipSpec};
    pub use crate::pipeline::{
        run, run_final_table, run_final_table_csv, run_final_table_csv_chunked, run_snapshots,
        snapshot, snapshot_chunked, update, update_snapshot_file, update_threads, ChunkedBuild,
        ScubeConfig, ScubeResult,
    };
    pub use crate::table_builder::UnitStrategy;
    pub use crate::unit_assignment::ClusteringMethod;
    pub use crate::visualizer::Visualizer;
    pub use crate::wizard::Wizard;
    pub use scube_common::{Result, ScubeError};
    pub use scube_cube::{
        fig1_grid, radial_series, top_contexts, CellCoords, ConcurrentCubeEngine, CubeBuilder,
        CubeExplorer, CubeQueryEngine, CubeSnapshot, Materialize, QueryStats, SegregationCube,
        UpdateBatch, UpdateStats,
    };
    pub use scube_data::{ChunkedBuildStats, FinalTableSpec, Relation};
    pub use scube_graph::{LabelPropParams, StocParams};
    pub use scube_segindex::{IndexValues, MeasureSet, PermutationTest, SegIndex, UnitCounts};
}
