//! Property tests for the graph substrate: projection laws, component
//! maximality, partition invariants, and SToC determinism.

use proptest::prelude::*;
use scube_graph::{
    connected_components, stoc, BipartiteGraph, GraphBuilder, NodeAttributes, StocParams,
};

const N_IND: u32 = 12;
const N_GRP: u32 = 8;

fn memberships() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::btree_set((0..N_IND, 0..N_GRP), 0..40)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

fn edge_list() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..15, 0u32..15, 1u32..5), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn projection_weight_equals_shared_count(pairs in memberships()) {
        let mut b = BipartiteGraph::new(N_IND, N_GRP);
        for &(i, g) in &pairs {
            b.add_untimed(i, g);
        }
        let p = b.project_groups(1);
        for (g1, g2, w) in p.graph.edges() {
            // Recount shared individuals directly.
            let shared = (0..N_IND)
                .filter(|&i| pairs.contains(&(i, g1)) && pairs.contains(&(i, g2)))
                .count() as u32;
            prop_assert_eq!(w, shared, "edge ({}, {})", g1, g2);
            prop_assert!(w >= 1);
        }
        // Completeness: any pair of groups sharing an individual has an edge.
        for g1 in 0..N_GRP {
            for g2 in g1 + 1..N_GRP {
                let shared = (0..N_IND)
                    .filter(|&i| pairs.contains(&(i, g1)) && pairs.contains(&(i, g2)))
                    .count() as u32;
                if shared > 0 {
                    let found = p.graph.edges_of(g1).any(|(v, w)| v == g2 && w == shared);
                    prop_assert!(found, "missing edge ({g1},{g2}) with weight {shared}");
                }
            }
        }
    }

    #[test]
    fn both_projections_have_consistent_isolated(pairs in memberships()) {
        let mut b = BipartiteGraph::new(N_IND, N_GRP);
        for &(i, g) in &pairs {
            b.add_untimed(i, g);
        }
        for p in [b.project_groups(1), b.project_individuals(1)] {
            for &node in &p.isolated {
                prop_assert_eq!(p.graph.degree(node), 0);
            }
            let n = p.graph.num_nodes() as u32;
            for u in 0..n {
                prop_assert_eq!(p.graph.degree(u) == 0, p.isolated.contains(&u));
            }
        }
    }

    #[test]
    fn components_form_maximal_partition(edges in edge_list(), threshold in 0u32..4) {
        let mut b = GraphBuilder::new(15);
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let c = connected_components(&g, threshold);
        // Partition covers all nodes.
        prop_assert_eq!(c.num_nodes(), 15);
        prop_assert_eq!(c.sizes().iter().sum::<u32>(), 15);
        // Every kept edge is internal; components are edge-closed.
        for (u, v, w) in g.edges() {
            if w >= threshold {
                prop_assert_eq!(c.of(u), c.of(v));
            }
        }
        // Maximality: two nodes in the same cluster are connected via kept
        // edges (checked by re-running a BFS per cluster).
        for cluster in 0..c.num_clusters() {
            let members: Vec<u32> = (0..15u32).filter(|&u| c.of(u) == cluster).collect();
            let mut seen = [false; 15];
            let mut stack = vec![members[0]];
            seen[members[0] as usize] = true;
            while let Some(u) = stack.pop() {
                for (v, w) in g.edges_of(u) {
                    if w >= threshold && !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            for &m in &members {
                prop_assert!(seen[m as usize]);
            }
        }
    }

    #[test]
    fn raising_threshold_refines_clustering(edges in edge_list()) {
        // Components at threshold t+1 must be a refinement of those at t.
        let mut b = GraphBuilder::new(15);
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let coarse = connected_components(&g, 1);
        let fine = connected_components(&g, 3);
        prop_assert!(fine.num_clusters() >= coarse.num_clusters());
        for u in 0..15u32 {
            for v in 0..15u32 {
                if fine.of(u) == fine.of(v) {
                    prop_assert_eq!(coarse.of(u), coarse.of(v));
                }
            }
        }
    }

    #[test]
    fn stoc_is_deterministic_partition(
        edges in edge_list(),
        tau in 0.0f64..1.0,
        alpha in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut b = GraphBuilder::new(15);
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let attrs = NodeAttributes::from_rows((0..15).map(|i| vec![(i % 4) as u32]).collect());
        let params = StocParams { tau, alpha, horizon: 3, seed };
        let c1 = stoc(&g, &attrs, params);
        let c2 = stoc(&g, &attrs, params);
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(c1.sizes().iter().sum::<u32>(), 15);
    }

    #[test]
    fn snapshot_monotone_in_interval(pairs in memberships(), t in -5i64..25) {
        let mut b = BipartiteGraph::new(N_IND, N_GRP);
        for (k, &(i, g)) in pairs.iter().enumerate() {
            let from = (k as i64 % 10) - 2;
            let to = from + 8;
            b.add(scube_graph::bipartite::Membership::timed(i, g, from, to));
        }
        let snap = b.snapshot(t);
        for m in snap.memberships() {
            prop_assert!(m.from <= t && t <= m.to);
        }
        prop_assert!(snap.memberships().len() <= b.memberships().len());
    }
}
