//! Compressed sparse row storage for undirected weighted graphs.

/// An immutable undirected graph with `u32` edge weights in CSR form.
///
/// Both directions of every edge are materialized, so `neighbors(u)` is a
/// contiguous slice — the layout the BFS-heavy clustering algorithms want.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
    weights: Vec<u32>,
    n_edges: u64,
}

impl Graph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> u64 {
        self.n_edges
    }

    /// Degree of `u`.
    pub fn degree(&self, u: u32) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Neighbor ids of `u` (sorted ascending).
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Weights parallel to [`Graph::neighbors`].
    pub fn weights(&self, u: u32) -> &[u32] {
        &self.weights[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Iterate `(neighbor, weight)` pairs of `u`.
    pub fn edges_of(&self, u: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.neighbors(u).iter().copied().zip(self.weights(u).iter().copied())
    }

    /// Iterate every undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |u| {
            self.edges_of(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (u, v, w))
        })
    }

    /// Nodes with no incident edges.
    pub fn isolated_nodes(&self) -> Vec<u32> {
        (0..self.num_nodes() as u32).filter(|&u| self.degree(u) == 0).collect()
    }
}

/// Accumulates weighted edges, then freezes them into a [`Graph`].
///
/// Duplicate `(u, v)` pairs have their weights summed; self-loops are
/// dropped (a company "sharing a director with itself" is meaningless in
/// the projections this graph backs).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, u32)>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Add an undirected edge; order of endpoints is irrelevant.
    pub fn add_edge(&mut self, u: u32, v: u32, w: u32) {
        assert!((u as usize) < self.n && (v as usize) < self.n, "node out of range");
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Number of raw (pre-merge) edge records.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into CSR form.
    pub fn build(mut self) -> Graph {
        // Merge duplicates by sorting (cheaper and more cache-friendly than
        // a hash map at multi-million edge scale).
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => merged.push((u, v, w)),
            }
        }

        let mut degree = vec![0u64; self.n];
        for &(u, v, _) in &merged {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut neighbors = vec![0u32; acc as usize];
        let mut weights = vec![0u32; acc as usize];
        let mut cursor = offsets.clone();
        for &(u, v, w) in &merged {
            let cu = cursor[u as usize] as usize;
            neighbors[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            neighbors[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        // Sorted insertion order (edges sorted by (u,v)) guarantees each
        // adjacency list ends up ascending for the u side; the v side needs
        // a per-node sort.
        let graph_n = self.n;
        let mut g = Graph { offsets, neighbors, weights, n_edges: merged.len() as u64 };
        for u in 0..graph_n {
            let lo = g.offsets[u] as usize;
            let hi = g.offsets[u + 1] as usize;
            let mut pairs: Vec<(u32, u32)> = g.neighbors[lo..hi]
                .iter()
                .copied()
                .zip(g.weights[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (nb, w)) in pairs.into_iter().enumerate() {
                g.neighbors[lo + i] = nb;
                g.weights[lo + i] = w;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_csr() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 1, 5);
        let g = b.build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.weights(1), &[2, 1, 5]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.isolated_nodes(), Vec::<u32>::new());
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 0, 2); // reversed orientation, same edge
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weights(0), &[3]);
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 7);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn isolated_nodes_reported() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.isolated_nodes(), vec![2, 3, 4]);
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(2, 1, 4);
        b.add_edge(3, 0, 2);
        let g = b.build();
        let mut edges: Vec<(u32, u32, u32)> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 1), (0, 3, 2), (1, 2, 4)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
