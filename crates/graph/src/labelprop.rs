//! Weighted label propagation — a fourth clustering method (extension).
//!
//! The paper's GraphClustering module offers three methods; label
//! propagation (Raghavan et al. 2007) is a natural, near-linear-time
//! addition for the very large graphs SCube targets: every node repeatedly
//! adopts the label carrying the largest total edge weight among its
//! neighbours until no label changes. Ties break toward the smallest label
//! and the node visit order is seeded, so results are deterministic.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::clustering::Clustering;
use crate::csr::Graph;

/// Parameters of label propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelPropParams {
    /// Maximum sweeps over the node set.
    pub max_iters: u32,
    /// RNG seed for the visit order.
    pub seed: u64,
}

impl Default for LabelPropParams {
    fn default() -> Self {
        LabelPropParams { max_iters: 20, seed: 0x1AB }
    }
}

/// Cluster by weighted label propagation.
pub fn label_propagation(graph: &Graph, params: LabelPropParams) -> Clustering {
    let n = graph.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SmallRng::seed_from_u64(params.seed);

    // Workhorse accumulator: label → total incident weight, reset per node
    // by walking the touched entries (cheaper than clearing a map).
    let mut weight_of_label: Vec<u64> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..params.max_iters {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &u in &order {
            if graph.degree(u) == 0 {
                continue;
            }
            touched.clear();
            for (v, w) in graph.edges_of(u) {
                let label = labels[v as usize];
                if weight_of_label[label as usize] == 0 {
                    touched.push(label);
                }
                weight_of_label[label as usize] += u64::from(w);
            }
            // Largest total weight, ties toward the smallest label.
            let mut best = labels[u as usize];
            let mut best_weight = 0u64;
            touched.sort_unstable();
            for &label in &touched {
                let w = weight_of_label[label as usize];
                if w > best_weight {
                    best = label;
                    best_weight = w;
                }
            }
            for &label in &touched {
                weight_of_label[label as usize] = 0;
            }
            if labels[u as usize] != best {
                labels[u as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Compact label space to dense cluster ids.
    let mut remap: Vec<u32> = vec![u32::MAX; n];
    let mut next = 0u32;
    let assignment: Vec<u32> = labels
        .iter()
        .map(|&l| {
            if remap[l as usize] == u32::MAX {
                remap[l as usize] = next;
                next += 1;
            }
            remap[l as usize]
        })
        .collect();
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use crate::quality::modularity;

    fn two_cliques(bridge_weight: u32) -> Graph {
        let mut b = GraphBuilder::new(8);
        for i in 0..4u32 {
            for j in i + 1..4 {
                b.add_edge(i, j, 5);
                b.add_edge(i + 4, j + 4, 5);
            }
        }
        b.add_edge(3, 4, bridge_weight);
        b.build()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques(1);
        let c = label_propagation(&g, LabelPropParams::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.of(0), c.of(3));
        assert_eq!(c.of(4), c.of(7));
        assert_ne!(c.of(0), c.of(4));
        // The split is the modularity-optimal one.
        let q = modularity(&g, &c).unwrap();
        assert!(q > 0.3, "q = {q}");
    }

    #[test]
    fn isolated_nodes_stay_singletons() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let c = label_propagation(&g, LabelPropParams::default());
        assert_eq!(c.of(0), c.of(1));
        // 2, 3, 4 keep their own labels.
        assert_eq!(c.num_clusters(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = two_cliques(2);
        let p = LabelPropParams { max_iters: 10, seed: 99 };
        assert_eq!(label_propagation(&g, p), label_propagation(&g, p));
    }

    #[test]
    fn covers_all_nodes() {
        let g = two_cliques(3);
        let c = label_propagation(&g, LabelPropParams::default());
        assert_eq!(c.num_nodes(), 8);
        assert_eq!(c.sizes().iter().sum::<u32>(), 8);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let c = label_propagation(&g, LabelPropParams::default());
        assert_eq!(c.num_clusters(), 0);
    }
}
