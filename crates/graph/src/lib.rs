#![warn(missing_docs)]
//! Graph substrate for SCube.
//!
//! The graph and bipartite scenarios of the paper (§2, §4) need:
//!
//! * [`csr`] — a compact undirected weighted graph (CSR adjacency), the
//!   FastUtil-storage substitute;
//! * [`bipartite`] — the individuals×groups membership graph with optional
//!   validity intervals (temporal analysis) and the **GraphBuilder**
//!   projections: group–group edges weighted by shared individuals, and
//!   individual–individual co-membership edges;
//! * [`components`] — connected components by BFS, with the
//!   weight-threshold variant designed in the companion journal paper
//!   (remove edges below a threshold, then take components);
//! * [`mod@stoc`] — the SToC attributed-graph clustering algorithm
//!   (Baroni, Conte, Patrignani, Ruggieri; ASONAM 2017), reimplemented
//!   from its published description;
//! * [`clustering`] — the partition type all clusterers produce, which the
//!   pipeline turns into organizational units;
//! * [`attributes`] — per-node categorical attribute sets and Jaccard
//!   similarity, the attribute half of SToC's combined distance;
//! * [`quality`] — weighted modularity, the quantitative axis on which the
//!   clustering-method experiments compare the three methods.

pub mod attributes;
pub mod bipartite;
pub mod clustering;
pub mod components;
pub mod csr;
pub mod labelprop;
pub mod quality;
pub mod stoc;

pub use attributes::NodeAttributes;
pub use bipartite::{BipartiteGraph, Membership, Projection};
pub use clustering::Clustering;
pub use components::connected_components;
pub use csr::{Graph, GraphBuilder};
pub use labelprop::{label_propagation, LabelPropParams};
pub use quality::modularity;
pub use stoc::{stoc, StocParams};
