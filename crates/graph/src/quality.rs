//! Clustering quality measures.
//!
//! The paper's demo discusses *which* clustering to use per scenario;
//! weighted Newman–Girvan modularity gives the experiments a quantitative
//! axis to compare connected components, weight-thresholding and SToC
//! beyond cluster counts.

use crate::clustering::Clustering;
use crate::csr::Graph;

/// Weighted modularity `Q ∈ [-0.5, 1]` of a clustering.
///
/// `Q = Σ_c (w_in(c)/W − (deg(c)/2W)²)` where `w_in(c)` is the total
/// weight of intra-cluster edges, `deg(c)` the total weighted degree of the
/// cluster's nodes and `W` the total edge weight. Returns `None` for a
/// graph with no edges (modularity is undefined without edges).
pub fn modularity(graph: &Graph, clustering: &Clustering) -> Option<f64> {
    assert_eq!(graph.num_nodes(), clustering.num_nodes(), "clustering must cover the graph");
    let k = clustering.num_clusters() as usize;
    let mut intra = vec![0.0f64; k];
    let mut degree = vec![0.0f64; k];
    let mut total_weight = 0.0f64;
    for (u, v, w) in graph.edges() {
        let w = f64::from(w);
        total_weight += w;
        let (cu, cv) = (clustering.of(u), clustering.of(v));
        degree[cu as usize] += w;
        degree[cv as usize] += w;
        if cu == cv {
            intra[cu as usize] += w;
        }
    }
    if total_weight == 0.0 {
        return None;
    }
    let q = (0..k)
        .map(|c| {
            let e_in = intra[c] / total_weight;
            let a = degree[c] / (2.0 * total_weight);
            e_in - a * a
        })
        .sum();
    Some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::csr::GraphBuilder;

    fn two_triangles_with_bridge() -> Graph {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 1);
        }
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn natural_split_beats_single_cluster() {
        let g = two_triangles_with_bridge();
        let split = Clustering::new(vec![0, 0, 0, 1, 1, 1]);
        let lumped = Clustering::new(vec![0, 0, 0, 0, 0, 0]);
        let q_split = modularity(&g, &split).unwrap();
        let q_lumped = modularity(&g, &lumped).unwrap();
        assert!(q_split > q_lumped, "split {q_split} vs lumped {q_lumped}");
        assert!(q_split > 0.3);
        // A single cluster always has Q = 0.
        assert!(q_lumped.abs() < 1e-12);
    }

    #[test]
    fn singletons_score_negative() {
        let g = two_triangles_with_bridge();
        let singletons = Clustering::new((0..6).collect());
        let q = modularity(&g, &singletons).unwrap();
        assert!(q < 0.0);
    }

    #[test]
    fn respects_edge_weights() {
        // Heavy intra-cluster edges raise Q relative to uniform weights.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10);
        b.add_edge(2, 3, 10);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let c = Clustering::new(vec![0, 0, 1, 1]);
        let q = modularity(&g, &c).unwrap();
        assert!(q > 0.4, "q = {q}");
    }

    #[test]
    fn empty_graph_undefined() {
        let g = GraphBuilder::new(3).build();
        let c = Clustering::new(vec![0, 1, 2]);
        assert_eq!(modularity(&g, &c), None);
    }

    #[test]
    fn components_maximize_among_edge_closed_partitions() {
        // For a disconnected graph, components capture all edge weight
        // internally, so no merge of components can improve Q.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let comps = connected_components(&g, 0);
        let q_comp = modularity(&g, &comps).unwrap();
        let merged = Clustering::new(vec![0, 0, 0, 0, 1, 1]);
        let q_merged = modularity(&g, &merged).unwrap();
        assert!(q_comp > q_merged);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn size_mismatch_panics() {
        let g = GraphBuilder::new(3).build();
        let c = Clustering::new(vec![0, 1]);
        modularity(&g, &c);
    }
}
