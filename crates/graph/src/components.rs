//! Connected components, with weight thresholding.
//!
//! Two of the three clustering methods SCube offers (§3) live here:
//! plain connected components (BFS), and the variant designed in the
//! companion journal paper — drop edges lighter than a threshold from the
//! giant component, then take components. Passing `min_weight = 1` (or 0)
//! gives plain components.

use crate::clustering::Clustering;
use crate::csr::Graph;

/// Cluster nodes into connected components of the sub-graph whose edges
/// weigh at least `min_weight`.
pub fn connected_components(graph: &Graph, min_weight: u32) -> Clustering {
    let n = graph.num_nodes();
    let mut assignment = vec![u32::MAX; n];
    let mut next_cluster = 0u32;
    let mut queue: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if assignment[start as usize] != u32::MAX {
            continue;
        }
        assignment[start as usize] = next_cluster;
        queue.clear();
        queue.push(start);
        while let Some(u) = queue.pop() {
            for (v, w) in graph.edges_of(u) {
                if w >= min_weight && assignment[v as usize] == u32::MAX {
                    assignment[v as usize] = next_cluster;
                    queue.push(v);
                }
            }
        }
        next_cluster += 1;
    }
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    #[test]
    fn two_components_and_an_isolate() {
        let g = graph(5, &[(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
        let c = connected_components(&g, 1);
        assert_eq!(c.num_clusters(), 2); // {0,1,2} and {3,4}
        assert_eq!(c.of(0), c.of(2));
        assert_eq!(c.of(3), c.of(4));
        assert_ne!(c.of(0), c.of(3));
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = graph(4, &[(0, 1, 1)]);
        let c = connected_components(&g, 1);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.sizes().iter().sum::<u32>(), 4);
    }

    #[test]
    fn threshold_splits_giant_component() {
        // A chain glued by a weight-1 bridge: 0-1 (w3), 1-2 (w1), 2-3 (w3).
        let g = graph(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 3)]);
        let all = connected_components(&g, 1);
        assert_eq!(all.num_clusters(), 1);
        assert_eq!(all.giant_size(), 4);
        let cut = connected_components(&g, 2);
        assert_eq!(cut.num_clusters(), 2);
        assert_eq!(cut.giant_size(), 2);
        assert_eq!(cut.of(0), cut.of(1));
        assert_eq!(cut.of(2), cut.of(3));
        assert_ne!(cut.of(1), cut.of(2));
    }

    #[test]
    fn every_edge_internal_when_unthresholded() {
        let g = graph(6, &[(0, 1, 1), (1, 2, 2), (3, 4, 1), (4, 5, 9)]);
        let c = connected_components(&g, 0);
        for (u, v, _) in g.edges() {
            assert_eq!(c.of(u), c.of(v), "edge ({u},{v}) crosses clusters");
        }
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        let c = connected_components(&g, 1);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.num_nodes(), 0);
    }
}
