//! Bipartite membership graphs and their unipartite projections.
//!
//! SCube's third input is `membership`: pairs `(individualID, groupID)`
//! optionally labelled with a validity interval (the Estonian dataset has
//! 20 years of board appointments). The **GraphBuilder** module of the
//! paper's Fig. 2 projects this bipartite graph onto one side:
//!
//! * [`BipartiteGraph::project_groups`] — nodes are groups (companies),
//!   an edge connects two groups sharing ≥ 1 individual, weighted by the
//!   number of shared individuals (Scenario 3);
//! * [`BipartiteGraph::project_individuals`] — nodes are individuals
//!   (directors), an edge connects two individuals sitting in a common
//!   group, weighted by the number of common groups (Scenario 2).

use crate::csr::{Graph, GraphBuilder};

/// One membership edge with validity interval (inclusive endpoints).
///
/// Untimed memberships use `(i64::MIN, i64::MAX)`; time units are whatever
/// the dataset uses (days, years, …) as long as snapshots use the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Membership {
    /// Individual node id (dense, `0..num_individuals`).
    pub individual: u32,
    /// Group node id (dense, `0..num_groups`).
    pub group: u32,
    /// First time instant at which the membership holds.
    pub from: i64,
    /// Last time instant at which the membership holds.
    pub to: i64,
}

impl Membership {
    /// An untimed membership (valid at every snapshot).
    pub fn untimed(individual: u32, group: u32) -> Self {
        Membership { individual, group, from: i64::MIN, to: i64::MAX }
    }

    /// A membership valid in `[from, to]`.
    pub fn timed(individual: u32, group: u32, from: i64, to: i64) -> Self {
        Membership { individual, group, from, to }
    }

    /// Does the membership hold at time `t`?
    pub fn active_at(&self, t: i64) -> bool {
        self.from <= t && t <= self.to
    }
}

/// The result of a projection: the unipartite graph plus the nodes that
/// ended up with no edges (the paper's `isolated` output file).
#[derive(Debug, Clone)]
pub struct Projection {
    /// Unipartite weighted graph over the projected side.
    pub graph: Graph,
    /// Nodes of the projected side with zero degree.
    pub isolated: Vec<u32>,
}

/// An individuals×groups membership graph.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    n_individuals: u32,
    n_groups: u32,
    memberships: Vec<Membership>,
}

impl BipartiteGraph {
    /// Create an empty graph with fixed side sizes.
    pub fn new(n_individuals: u32, n_groups: u32) -> Self {
        BipartiteGraph { n_individuals, n_groups, memberships: Vec::new() }
    }

    /// Number of individual nodes.
    pub fn num_individuals(&self) -> u32 {
        self.n_individuals
    }

    /// Number of group nodes.
    pub fn num_groups(&self) -> u32 {
        self.n_groups
    }

    /// All membership edges.
    pub fn memberships(&self) -> &[Membership] {
        &self.memberships
    }

    /// Add a membership edge.
    pub fn add(&mut self, m: Membership) {
        assert!(m.individual < self.n_individuals, "individual out of range");
        assert!(m.group < self.n_groups, "group out of range");
        self.memberships.push(m);
    }

    /// Add an untimed membership.
    pub fn add_untimed(&mut self, individual: u32, group: u32) {
        self.add(Membership::untimed(individual, group));
    }

    /// The sub-graph of memberships active at time `t` (the `dates` input
    /// of Fig. 2 turns one temporal dataset into one snapshot per date).
    pub fn snapshot(&self, t: i64) -> BipartiteGraph {
        BipartiteGraph {
            n_individuals: self.n_individuals,
            n_groups: self.n_groups,
            memberships: self.memberships.iter().copied().filter(|m| m.active_at(t)).collect(),
        }
    }

    /// Adjacency lists `individual → sorted groups` (deduplicated).
    fn groups_per_individual(&self) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n_individuals as usize];
        for m in &self.memberships {
            adj[m.individual as usize].push(m.group);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Adjacency lists `group → sorted individuals` (deduplicated).
    fn individuals_per_group(&self) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n_groups as usize];
        for m in &self.memberships {
            adj[m.group as usize].push(m.individual);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Project onto groups: edge `(g1, g2)` with weight = number of shared
    /// individuals. Edges with weight < `min_shared` are dropped (weight
    /// thresholding at projection time saves building the giant component
    /// only to cut it later).
    pub fn project_groups(&self, min_shared: u32) -> Projection {
        Self::project(self.groups_per_individual(), self.n_groups as usize, min_shared)
    }

    /// Project onto individuals: edge `(d1, d2)` with weight = number of
    /// common groups (directors sitting together on ≥ `min_shared` boards).
    pub fn project_individuals(&self, min_shared: u32) -> Projection {
        Self::project(self.individuals_per_group(), self.n_individuals as usize, min_shared)
    }

    fn project(adj: Vec<Vec<u32>>, n_projected: usize, min_shared: u32) -> Projection {
        let mut builder = GraphBuilder::new(n_projected);
        // Every co-membership pair contributes weight 1; GraphBuilder merges
        // duplicates by summing, so the final weight is exactly the number
        // of shared pivot nodes.
        for list in &adj {
            for (i, &a) in list.iter().enumerate() {
                for &b in &list[i + 1..] {
                    builder.add_edge(a, b, 1);
                }
            }
        }
        let full = builder.build();
        let graph = if min_shared > 1 {
            let mut filtered = GraphBuilder::new(n_projected);
            for (u, v, w) in full.edges() {
                if w >= min_shared {
                    filtered.add_edge(u, v, w);
                }
            }
            filtered.build()
        } else {
            full
        };
        let isolated = graph.isolated_nodes();
        Projection { graph, isolated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper example: directors d0,d1 sit in both c0 and c1; d2 sits in c1
    /// and c2; c3 has only d3.
    fn sample() -> BipartiteGraph {
        let mut b = BipartiteGraph::new(4, 4);
        b.add_untimed(0, 0);
        b.add_untimed(0, 1);
        b.add_untimed(1, 0);
        b.add_untimed(1, 1);
        b.add_untimed(2, 1);
        b.add_untimed(2, 2);
        b.add_untimed(3, 3);
        b
    }

    #[test]
    fn group_projection_weights_count_shared_directors() {
        let p = sample().project_groups(1);
        // c0–c1 share d0,d1 → weight 2; c1–c2 share d2 → weight 1.
        let mut edges: Vec<(u32, u32, u32)> = p.graph.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 2), (1, 2, 1)]);
        assert_eq!(p.isolated, vec![3]);
    }

    #[test]
    fn min_shared_threshold_filters_edges() {
        let p = sample().project_groups(2);
        let edges: Vec<(u32, u32, u32)> = p.graph.edges().collect();
        assert_eq!(edges, vec![(0, 1, 2)]);
        assert_eq!(p.isolated, vec![2, 3]);
    }

    #[test]
    fn individual_projection() {
        let p = sample().project_individuals(1);
        // d0–d1 share c0,c1 → weight 2; d0–d2 and d1–d2 share c1 → weight 1.
        let mut edges: Vec<(u32, u32, u32)> = p.graph.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 2), (0, 2, 1), (1, 2, 1)]);
        assert_eq!(p.isolated, vec![3]);
    }

    #[test]
    fn duplicate_memberships_do_not_inflate_weights() {
        let mut b = BipartiteGraph::new(2, 2);
        b.add_untimed(0, 0);
        b.add_untimed(0, 0); // duplicate record
        b.add_untimed(0, 1);
        let p = b.project_groups(1);
        assert_eq!(p.graph.edges().collect::<Vec<_>>(), vec![(0, 1, 1)]);
    }

    #[test]
    fn snapshots_filter_by_interval() {
        let mut b = BipartiteGraph::new(2, 2);
        b.add(Membership::timed(0, 0, 2000, 2005));
        b.add(Membership::timed(0, 1, 2004, 2010));
        b.add(Membership::timed(1, 1, 1998, 2001));
        assert_eq!(b.snapshot(2004).memberships().len(), 2);
        assert_eq!(b.snapshot(2000).memberships().len(), 2);
        assert_eq!(b.snapshot(2011).memberships().len(), 0);
        // Projection on a snapshot: only in 2004–2005 does c0 share d0 with c1.
        let p = b.snapshot(2004).project_groups(1);
        assert_eq!(p.graph.edges().collect::<Vec<_>>(), vec![(0, 1, 1)]);
        let p = b.snapshot(2002).project_groups(1);
        assert_eq!(p.graph.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn membership_bounds_checked() {
        let mut b = BipartiteGraph::new(1, 1);
        b.add_untimed(0, 1);
    }
}
