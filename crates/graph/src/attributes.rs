//! Per-node categorical attribute sets and Jaccard similarity.
//!
//! The attribute half of SToC's combined distance. Each node carries a set
//! of encoded attribute values (e.g. a company's sector and headquarters
//! region, encoded to dense `u32`s by the caller).

/// Sorted attribute-value sets, one per node.
#[derive(Debug, Clone, Default)]
pub struct NodeAttributes {
    values: Vec<Vec<u32>>,
}

impl NodeAttributes {
    /// Build from rows of attribute codes (normalized to sorted unique).
    pub fn from_rows(mut rows: Vec<Vec<u32>>) -> Self {
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        NodeAttributes { values: rows }
    }

    /// Attributes with no values for any of `n` nodes.
    pub fn empty(n: usize) -> Self {
        NodeAttributes { values: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted value set of node `u`.
    pub fn of(&self, u: u32) -> &[u32] {
        &self.values[u as usize]
    }

    /// Jaccard similarity of two nodes' attribute sets.
    ///
    /// Two nodes with no attributes at all are considered identical
    /// (similarity 1): with no information, SToC should fall back to pure
    /// structural clustering rather than treating everything as dissimilar.
    pub fn jaccard(&self, u: u32, v: u32) -> f64 {
        let (a, b) = (self.of(u), self.of(v));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_values() {
        let attrs = NodeAttributes::from_rows(vec![
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![1, 2, 3],
            vec![9],
            vec![],
            vec![],
        ]);
        assert!((attrs.jaccard(0, 1) - 0.5).abs() < 1e-12); // {2,3}/{1,2,3,4}
        assert_eq!(attrs.jaccard(0, 2), 1.0);
        assert_eq!(attrs.jaccard(0, 3), 0.0);
        assert_eq!(attrs.jaccard(4, 5), 1.0); // both empty
        assert_eq!(attrs.jaccard(0, 4), 0.0); // one empty
    }

    #[test]
    fn rows_are_normalized() {
        let attrs = NodeAttributes::from_rows(vec![vec![3, 1, 3, 2]]);
        assert_eq!(attrs.of(0), &[1, 2, 3]);
    }

    #[test]
    fn symmetry() {
        let attrs = NodeAttributes::from_rows(vec![vec![1, 5], vec![5, 9, 11]]);
        assert_eq!(attrs.jaccard(0, 1), attrs.jaccard(1, 0));
    }
}
