//! SToC: attributed-graph clustering for very large graphs.
//!
//! Reimplementation of the algorithm of Baroni, Conte, Patrignani &
//! Ruggieri (*Efficiently clustering very large attributed graphs*,
//! ASONAM 2017), which SCube offers as its third clustering method. The
//! published algorithm repeatedly:
//!
//! 1. picks a random unassigned *seed* node;
//! 2. grows a cluster around the seed with a similarity-bounded BFS: a
//!    node joins when its combined structural+attribute distance from the
//!    seed is at most a threshold `τ`, and expansion proceeds only through
//!    joined nodes (clusters stay connected);
//! 3. removes the cluster and repeats until every node is assigned.
//!
//! The combined distance here is
//! `d(s, v) = α · min(hops, h)/h + (1 − α) · (1 − Jaccard(attrs))`,
//! with `h` the BFS horizon — a faithful-in-spirit reconstruction of the
//! paper's combination of a capped structural distance with an attribute
//! distance (see DESIGN.md §3 on substitutions). Runtime is `O(m)` per
//! produced cluster neighbourhood, linear overall on bounded-degree
//! graphs, matching the "very large graphs" design goal.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::attributes::NodeAttributes;
use crate::clustering::Clustering;
use crate::csr::Graph;

/// Parameters of the SToC clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StocParams {
    /// Distance threshold `τ ∈ [0,1]`: larger ⇒ fewer, larger clusters.
    pub tau: f64,
    /// Structure/attribute mix `α ∈ [0,1]`: 1 = purely structural,
    /// 0 = purely attribute-driven.
    pub alpha: f64,
    /// BFS horizon `h ≥ 1`: maximum hop distance explored from a seed.
    pub horizon: u32,
    /// RNG seed for the random seed-node order (determinism).
    pub seed: u64,
}

impl Default for StocParams {
    fn default() -> Self {
        StocParams { tau: 0.5, alpha: 0.5, horizon: 2, seed: 0xC1B7 }
    }
}

/// Run SToC over a graph with node attributes.
///
/// # Panics
/// Panics when `attrs.len()` differs from the node count, or parameters are
/// out of range.
pub fn stoc(graph: &Graph, attrs: &NodeAttributes, params: StocParams) -> Clustering {
    let n = graph.num_nodes();
    assert_eq!(attrs.len(), n, "attribute rows must match node count");
    assert!((0.0..=1.0).contains(&params.tau), "tau must be in [0,1]");
    assert!((0.0..=1.0).contains(&params.alpha), "alpha must be in [0,1]");
    assert!(params.horizon >= 1, "horizon must be >= 1");

    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);

    let mut assignment = vec![u32::MAX; n];
    let mut next_cluster = 0u32;
    // Workhorse BFS state, reused across seeds.
    let mut frontier: Vec<u32> = Vec::new();
    let mut next_frontier: Vec<u32> = Vec::new();

    for &seed_node in &order {
        if assignment[seed_node as usize] != u32::MAX {
            continue;
        }
        let cluster = next_cluster;
        next_cluster += 1;
        assignment[seed_node as usize] = cluster;

        frontier.clear();
        frontier.push(seed_node);
        for hop in 1..=params.horizon {
            next_frontier.clear();
            let structural = params.alpha * f64::from(hop) / f64::from(params.horizon);
            if structural > params.tau {
                break; // structure alone already exceeds τ at this hop
            }
            for &u in &frontier {
                for v in graph.neighbors(u) {
                    if assignment[*v as usize] != u32::MAX {
                        continue;
                    }
                    let attr_dist = 1.0 - attrs.jaccard(seed_node, *v);
                    let d = structural + (1.0 - params.alpha) * attr_dist;
                    if d <= params.tau {
                        assignment[*v as usize] = cluster;
                        next_frontier.push(*v);
                    }
                }
            }
            if next_frontier.is_empty() {
                break;
            }
            std::mem::swap(&mut frontier, &mut next_frontier);
        }
    }
    Clustering::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 - 1 {
            b.add_edge(u, u + 1, 1);
        }
        b.build()
    }

    #[test]
    fn produces_a_partition() {
        let g = path_graph(10);
        let attrs = NodeAttributes::empty(10);
        let c = stoc(&g, &attrs, StocParams::default());
        assert_eq!(c.num_nodes(), 10);
        assert_eq!(c.sizes().iter().sum::<u32>(), 10);
    }

    #[test]
    fn tau_zero_gives_singletons() {
        let g = path_graph(6);
        // Give every node a distinct attribute so even neighbors differ.
        let attrs = NodeAttributes::from_rows((0..6).map(|i| vec![i as u32]).collect());
        let c = stoc(&g, &attrs, StocParams { tau: 0.0, alpha: 0.5, horizon: 2, seed: 1 });
        assert_eq!(c.num_clusters(), 6);
    }

    #[test]
    fn tau_one_alpha_one_merges_connected_neighborhoods() {
        // With τ=1 and α=1 everything within the horizon joins.
        let g = path_graph(4);
        let attrs = NodeAttributes::empty(4);
        let c = stoc(&g, &attrs, StocParams { tau: 1.0, alpha: 1.0, horizon: 8, seed: 7 });
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn attributes_split_structurally_uniform_graph() {
        // A 6-cycle where nodes 0-2 share attribute 1 and nodes 3-5 share 2:
        // with attribute-dominated distance, two clusters emerge.
        let mut b = GraphBuilder::new(6);
        for u in 0..6u32 {
            b.add_edge(u, (u + 1) % 6, 1);
        }
        let g = b.build();
        let attrs =
            NodeAttributes::from_rows(vec![vec![1], vec![1], vec![1], vec![2], vec![2], vec![2]]);
        let c = stoc(&g, &attrs, StocParams { tau: 0.4, alpha: 0.3, horizon: 4, seed: 3 });
        // Nodes with equal attributes and adjacency must co-cluster pairwise
        // at least within each attribute block reachable from its seed.
        for cluster in 0..c.num_clusters() {
            let members: Vec<u32> = (0..6u32).filter(|&u| c.of(u) == cluster).collect();
            let first_attr = attrs.of(members[0]);
            for &m in &members {
                assert_eq!(attrs.of(m), first_attr, "cluster mixes attribute groups");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = path_graph(20);
        let attrs = NodeAttributes::from_rows((0..20).map(|i| vec![(i % 3) as u32]).collect());
        let p = StocParams { tau: 0.6, alpha: 0.4, horizon: 3, seed: 42 };
        let a = stoc(&g, &attrs, p);
        let b = stoc(&g, &attrs, p);
        assert_eq!(a, b);
    }

    #[test]
    fn clusters_are_connected() {
        // Every non-seed member joined through a BFS edge, so each cluster
        // must induce a connected subgraph.
        let mut b = GraphBuilder::new(12);
        for u in 0..11u32 {
            b.add_edge(u, u + 1, 1);
        }
        b.add_edge(0, 11, 1);
        let g = b.build();
        let attrs = NodeAttributes::from_rows((0..12).map(|i| vec![(i / 4) as u32]).collect());
        let c = stoc(&g, &attrs, StocParams { tau: 0.7, alpha: 0.5, horizon: 4, seed: 5 });
        for cluster in 0..c.num_clusters() {
            let members: Vec<u32> = (0..12u32).filter(|&u| c.of(u) == cluster).collect();
            // BFS within the cluster from its first member reaches all.
            let mut seen = [false; 12];
            let mut stack = vec![members[0]];
            seen[members[0] as usize] = true;
            while let Some(u) = stack.pop() {
                for &v in g.neighbors(u) {
                    if !seen[v as usize] && c.of(v) == cluster {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            for &m in &members {
                assert!(seen[m as usize], "cluster {cluster} is disconnected at node {m}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "attribute rows")]
    fn attr_length_mismatch_panics() {
        let g = path_graph(3);
        stoc(&g, &NodeAttributes::empty(2), StocParams::default());
    }
}
