//! Node partitions — the output of every clustering method.
//!
//! A clustering assigns every node to exactly one cluster; the pipeline
//! turns clusters into organizational units (`nodeUnit` in Fig. 2).

/// A partition of `0..n` nodes into `num_clusters` clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<u32>,
    n_clusters: u32,
}

impl Clustering {
    /// Wrap an assignment vector; cluster ids must be dense `0..k`.
    pub fn new(assignment: Vec<u32>) -> Self {
        let n_clusters = assignment.iter().copied().max().map_or(0, |m| m + 1);
        debug_assert!(
            {
                let mut seen = vec![false; n_clusters as usize];
                for &c in &assignment {
                    seen[c as usize] = true;
                }
                seen.iter().all(|&s| s)
            },
            "cluster ids must be dense"
        );
        Clustering { assignment, n_clusters }
    }

    /// Cluster of node `u`.
    pub fn of(&self, u: u32) -> u32 {
        self.assignment[u as usize]
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The raw assignment slice (`node → cluster`).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.n_clusters as usize];
        for &c in &self.assignment {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest cluster (the "giant component" diagnostic the
    /// threshold-clustering method is designed to shrink).
    pub fn giant_size(&self) -> u32 {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Relabel clusters by decreasing size (cluster 0 becomes the largest);
    /// ties broken by original id for determinism.
    #[must_use]
    pub fn relabel_by_size(&self) -> Clustering {
        let sizes = self.sizes();
        let mut order: Vec<u32> = (0..self.n_clusters).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(sizes[c as usize]), c));
        let mut new_id = vec![0u32; self.n_clusters as usize];
        for (rank, &c) in order.iter().enumerate() {
            new_id[c as usize] = rank as u32;
        }
        Clustering {
            assignment: self.assignment.iter().map(|&c| new_id[c as usize]).collect(),
            n_clusters: self.n_clusters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Clustering::new(vec![0, 1, 0, 2, 1]);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.of(2), 0);
        assert_eq!(c.sizes(), vec![2, 2, 1]);
        assert_eq!(c.giant_size(), 2);
    }

    #[test]
    fn relabel_by_size_orders_clusters() {
        let c = Clustering::new(vec![2, 2, 2, 0, 1, 1]);
        let r = c.relabel_by_size();
        // Cluster of size 3 becomes 0, size 2 becomes 1, size 1 becomes 2.
        assert_eq!(r.assignment(), &[0, 0, 0, 2, 1, 1]);
        assert_eq!(r.sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::new(vec![]);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.giant_size(), 0);
    }
}
