//! Attribute schemas with segregation/context roles.
//!
//! SCube distinguishes two kinds of cube dimensions (§2 of the paper):
//! *segregation attributes* (SA) describe the potentially segregated groups
//! (sex, age, birthplace, …) and *context attributes* (CA) describe where
//! segregation may appear (region, sector, …). The split determines how an
//! itemset `A ∪ B` is interpreted as a cube cell: `A` = SA coordinates
//! (minority definition), `B` = CA coordinates (context definition).

use scube_common::{Result, ScubeError};

/// Role of an attribute in segregation analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrRole {
    /// Segregation attribute: defines minority groups (e.g. `sex`, `age`).
    Segregation,
    /// Context attribute: defines analysis contexts (e.g. `region`).
    Context,
}

impl std::fmt::Display for AttrRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AttrRole::Segregation => "SA",
            AttrRole::Context => "CA",
        })
    }
}

/// One attribute of the population table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Column name (e.g. `"gender"`).
    pub name: String,
    /// SA or CA.
    pub role: AttrRole,
    /// Whether one individual may carry several values of this attribute
    /// (the paper's `σ[owns] = {house, car}` example; multi-valued cells are
    /// `;`-separated in CSV inputs).
    pub multi_valued: bool,
}

impl Attribute {
    /// Single-valued segregation attribute.
    pub fn sa(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), role: AttrRole::Segregation, multi_valued: false }
    }

    /// Single-valued context attribute.
    pub fn ca(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), role: AttrRole::Context, multi_valued: false }
    }

    /// Mark the attribute as multi-valued.
    pub fn multi(mut self) -> Self {
        self.multi_valued = true;
        self
    }
}

/// Index of an attribute within its [`Schema`].
pub type AttrId = u16;

/// An ordered set of attributes with unique names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema, rejecting duplicate attribute names.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(ScubeError::Schema(format!("duplicate attribute '{}'", a.name)));
            }
        }
        if attrs.len() > AttrId::MAX as usize {
            return Err(ScubeError::Schema("too many attributes".into()));
        }
        Ok(Schema { attrs })
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Attribute by id.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id as usize]
    }

    /// Look up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name).map(|i| i as AttrId)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Ids of the segregation attributes.
    pub fn sa_ids(&self) -> Vec<AttrId> {
        self.ids_with_role(AttrRole::Segregation)
    }

    /// Ids of the context attributes.
    pub fn ca_ids(&self) -> Vec<AttrId> {
        self.ids_with_role(AttrRole::Context)
    }

    fn ids_with_role(&self, role: AttrRole) -> Vec<AttrId> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == role)
            .map(|(i, _)| i as AttrId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_partition() {
        let s = Schema::new(vec![
            Attribute::sa("gender"),
            Attribute::sa("age"),
            Attribute::ca("region"),
            Attribute::ca("sector").multi(),
        ])
        .unwrap();
        assert_eq!(s.sa_ids(), vec![0, 1]);
        assert_eq!(s.ca_ids(), vec![2, 3]);
        assert!(s.attr(3).multi_valued);
        assert_eq!(s.attr_id("region"), Some(2));
        assert_eq!(s.attr_id("nope"), None);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![Attribute::sa("x"), Attribute::ca("x")]).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn role_display() {
        assert_eq!(AttrRole::Segregation.to_string(), "SA");
        assert_eq!(AttrRole::Context.to_string(), "CA");
    }
}
