//! String-level relational tables backed by CSV.
//!
//! [`Relation`] is the untyped staging area between SCube's CSV inputs and
//! the encoded [`crate::TransactionDb`]: a header plus rows of strings.
//! The pipeline's `individuals`, `groups`, `membership` and `finalTable`
//! files all pass through here.
//!
//! Large inputs should not pass through a whole-table `Relation` at all:
//! [`CsvRows`] streams one record at a time through a single reused buffer,
//! so encoding a million-row final table holds O(one record) of staging
//! memory instead of the entire file — see
//! [`crate::FinalTableSpec::load_csv`].

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use scube_common::csv;
use scube_common::{Result, ScubeError};

/// An in-memory table: named columns, rows of strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Relation {
    /// Create an empty relation with the given column names.
    pub fn new(columns: Vec<String>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(ScubeError::Schema(format!("duplicate column '{c}'")));
            }
        }
        Ok(Relation { columns, rows: Vec::new() })
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row; its arity must match the header.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(ScubeError::Schema(format!(
                "row has {} fields, header has {}",
                row.len(),
                self.columns.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// A new relation holding the rows of `range`, same columns — what
    /// base/delta splits for incremental-update experiments use.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Relation {
        Relation { columns: self.columns.clone(), rows: self.rows[range].to_vec() }
    }

    /// Value at `(row, column-name)`.
    pub fn get(&self, row: usize, column: &str) -> Option<&str> {
        let c = self.column_index(column)?;
        self.rows.get(row).map(|r| r[c].as_str())
    }

    /// Read a relation from CSV with a header line.
    ///
    /// Materializes every row; for inputs too large to stage in memory,
    /// stream them with [`CsvRows`] instead.
    pub fn read_csv<R: BufRead>(input: R) -> Result<Self> {
        let mut rows = CsvRows::open(input)?;
        let mut rel = Relation::new(rows.columns().to_vec())?;
        while let Some(rec) = rows.next_row()? {
            rel.rows.push(rec.to_vec());
        }
        Ok(rel)
    }

    /// Read a relation from a CSV file.
    pub fn read_csv_path(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)
            .map_err(|e| ScubeError::io_at(path.display().to_string(), e))?;
        Self::read_csv(BufReader::new(file))
    }

    /// Write the relation as CSV (header + rows).
    pub fn write_csv<W: Write>(&self, output: W) -> Result<()> {
        let mut w = csv::Writer::new(BufWriter::new(output));
        w.write_record(&self.columns)?;
        for row in &self.rows {
            w.write_record(row)?;
        }
        w.flush()
    }

    /// Write the relation to a CSV file.
    pub fn write_csv_path(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let file = std::fs::File::create(path)
            .map_err(|e| ScubeError::io_at(path.display().to_string(), e))?;
        self.write_csv(file)
    }
}

/// A streaming CSV record visitor: header parsed up front, then one record
/// at a time through a reused buffer.
///
/// This is the bounded-memory counterpart of [`Relation::read_csv`] — peak
/// staging memory is one record, independent of row count. Arity is checked
/// against the header on every record, exactly like the materializing
/// reader.
///
/// ```
/// # use scube_data::CsvRows;
/// let mut rows = CsvRows::open("id,gender\n1,F\n2,M\n".as_bytes()).unwrap();
/// assert_eq!(rows.columns(), ["id", "gender"]);
/// let mut seen = 0;
/// while let Some(rec) = rows.next_row().unwrap() {
///     assert_eq!(rec.len(), 2);
///     seen += 1;
/// }
/// assert_eq!(seen, 2);
/// ```
pub struct CsvRows<R: BufRead> {
    reader: csv::Reader<R>,
    columns: Vec<String>,
    rec: Vec<String>,
}

impl CsvRows<BufReader<std::fs::File>> {
    /// Stream records from a CSV file.
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)
            .map_err(|e| ScubeError::io_at(path.display().to_string(), e))?;
        Self::open(BufReader::new(file))
    }
}

impl<R: BufRead> CsvRows<R> {
    /// Parse the header line and prepare to stream the records under it.
    pub fn open(input: R) -> Result<Self> {
        let mut reader = csv::Reader::new(input);
        let mut columns = Vec::new();
        if !reader.read_record(&mut columns)? {
            return Err(ScubeError::Csv { line: 0, msg: "missing header".into() });
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(ScubeError::Schema(format!("duplicate column '{c}'")));
            }
        }
        Ok(CsvRows { reader, columns, rec: Vec::new() })
    }

    /// Column names from the header line.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The next record, or `None` at end of input. The returned slice
    /// borrows an internal buffer that the next call overwrites.
    pub fn next_row(&mut self) -> Result<Option<&[String]>> {
        if !self.reader.read_record(&mut self.rec)? {
            return Ok(None);
        }
        if self.rec.len() != self.columns.len() {
            return Err(ScubeError::Csv {
                line: self.reader.line(),
                msg: format!("expected {} fields, found {}", self.columns.len(), self.rec.len()),
            });
        }
        Ok(Some(&self.rec))
    }

    /// 1-based line number of the most recently read record (for errors).
    pub fn line(&self) -> u64 {
        self.reader.line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut r = Relation::new(vec!["id".into(), "gender".into()]).unwrap();
        r.push_row(vec!["1".into(), "F".into()]).unwrap();
        r.push_row(vec!["2".into(), "M".into()]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0, "gender"), Some("F"));
        assert_eq!(r.get(1, "id"), Some("2"));
        assert_eq!(r.get(0, "nope"), None);
        assert_eq!(r.column_index("gender"), Some(1));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(vec!["a".into(), "b".into()]).unwrap();
        assert!(r.push_row(vec!["1".into()]).is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Relation::new(vec!["a".into(), "a".into()]).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let mut r = Relation::new(vec!["id".into(), "sector".into()]).unwrap();
        r.push_row(vec!["1".into(), "edu;transport".into()]).unwrap();
        r.push_row(vec!["2".into(), "with,comma".into()]).unwrap();
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let back = Relation::read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn read_rejects_ragged_rows() {
        let err = Relation::read_csv("a,b\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2 fields"));
    }

    #[test]
    fn read_rejects_empty_input() {
        assert!(Relation::read_csv("".as_bytes()).is_err());
    }
}
