//! Vertical (item → tidset) representation of a transaction database.
//!
//! The cube builder and the Eclat miner work on *postings*: for each item,
//! the set of transaction ids containing it. The representation of a
//! posting is generic over [`Posting`] so the EWAH / dense / tid-vector
//! ablation (experiment E11) runs through identical code.

use scube_bitmap::{EwahBitmap, Posting};

use crate::dictionary::ItemId;
use crate::transactions::{TransactionDb, UnitId};

/// Item-indexed postings plus the `tid → unit` map.
#[derive(Debug, Clone)]
pub struct VerticalDb<P: Posting = EwahBitmap> {
    postings: Vec<P>,
    n_transactions: u32,
    unit_of: Vec<UnitId>,
    n_units: u32,
}

impl<P: Posting> VerticalDb<P> {
    /// An empty database — no items, no transactions, no units. The
    /// starting point of chunked construction: every chunk of rows then
    /// arrives through [`Self::append_rows`], which only ever extends
    /// posting tails, so the grown database is byte-identical to a
    /// one-shot [`Self::build`] on the same rows.
    pub fn empty() -> Self {
        VerticalDb { postings: Vec::new(), n_transactions: 0, unit_of: Vec::new(), n_units: 0 }
    }

    /// Build from a horizontal database.
    pub fn build(db: &TransactionDb) -> Self {
        // Collect tids per item, then freeze each list into a posting.
        let mut tids: Vec<Vec<u32>> = vec![Vec::new(); db.dictionary().len()];
        for t in 0..db.len() {
            for &item in db.transaction(t) {
                tids[item as usize].push(t as u32);
            }
        }
        let postings = tids.iter().map(|ids| P::from_sorted(ids)).collect();
        VerticalDb {
            postings,
            n_transactions: db.len() as u32,
            unit_of: db.units().to_vec(),
            n_units: db.num_units() as u32,
        }
    }

    /// Reassemble a vertical database from its parts (snapshot loading).
    ///
    /// Returns `None` when the parts are inconsistent: the unit map must
    /// have one entry per transaction, every unit id must be `< n_units`,
    /// and no posting may contain a tid `>= n_transactions`.
    pub fn from_parts(
        postings: Vec<P>,
        n_transactions: u32,
        unit_of: Vec<UnitId>,
        n_units: u32,
    ) -> Option<Self> {
        if unit_of.len() != n_transactions as usize || unit_of.iter().any(|&u| u >= n_units) {
            return None;
        }
        let mut max_tid = None::<u32>;
        for p in &postings {
            p.for_each(|tid| max_tid = Some(max_tid.map_or(tid, |m| m.max(tid))));
        }
        if max_tid.is_some_and(|m| m >= n_transactions) {
            return None;
        }
        Some(VerticalDb { postings, n_transactions, unit_of, n_units })
    }

    /// As [`Self::from_parts`], but trusting that every posting's tids are
    /// already known to be `< n_transactions` — skipping the full posting
    /// scan, which is O(total data) and would defeat a milliseconds-cold
    /// mmap open. The unit map is still checked (it is O(rows), owned, and
    /// cheap). Callers must have bounded the postings themselves: the
    /// snapshot mmap path does so via `Posting::map_slot`'s universe check.
    pub fn from_validated_parts(
        postings: Vec<P>,
        n_transactions: u32,
        unit_of: Vec<UnitId>,
        n_units: u32,
    ) -> Option<Self> {
        if unit_of.len() != n_transactions as usize || unit_of.iter().any(|&u| u >= n_units) {
            return None;
        }
        Some(VerticalDb { postings, n_transactions, unit_of, n_units })
    }

    /// Fold a batch of appended transactions into the database in place —
    /// the delta-ingest primitive behind incremental cube maintenance.
    ///
    /// Each row holds sorted, deduplicated item ids and a unit id; rows are
    /// assigned the next transaction ids in order, so every existing
    /// posting is extended at its tail ([`Posting::append_sorted`]) rather
    /// than rebuilt. `n_items_after` / `n_units_after` widen the item and
    /// unit spaces for ids first seen in the batch (empty postings are
    /// created for new items that happen not to appear — callers pass the
    /// post-interning dictionary sizes).
    ///
    /// Errors (leaving `self` untouched) when a row references an item
    /// `>= n_items_after` or a unit `>= n_units_after`, or when either
    /// space would shrink.
    pub fn append_rows(
        &mut self,
        rows: &[(Vec<ItemId>, UnitId)],
        n_items_after: usize,
        n_units_after: u32,
    ) -> std::result::Result<(), String> {
        if n_items_after < self.postings.len() {
            return Err(format!(
                "item space cannot shrink ({} -> {n_items_after})",
                self.postings.len()
            ));
        }
        if n_units_after < self.n_units {
            return Err(format!("unit space cannot shrink ({} -> {n_units_after})", self.n_units));
        }
        let mut new_tids: Vec<Vec<u32>> = vec![Vec::new(); n_items_after];
        for (i, (items, unit)) in rows.iter().enumerate() {
            if *unit >= n_units_after {
                return Err(format!("row {i} references unknown unit {unit}"));
            }
            let tid = self.n_transactions + i as u32;
            let mut prev: Option<ItemId> = None;
            for &item in items {
                if item as usize >= n_items_after {
                    return Err(format!("row {i} references unknown item {item}"));
                }
                if prev.is_some_and(|p| item <= p) {
                    return Err(format!("row {i} items are not strictly increasing"));
                }
                prev = Some(item);
                new_tids[item as usize].push(tid);
            }
        }
        self.postings.resize_with(n_items_after, || P::from_sorted(&[]));
        for (item, tids) in new_tids.iter().enumerate() {
            if !tids.is_empty() {
                self.postings[item].append_sorted(tids);
            }
        }
        self.unit_of.extend(rows.iter().map(|&(_, u)| u));
        self.n_transactions += rows.len() as u32;
        self.n_units = n_units_after;
        Ok(())
    }

    /// Remove a sorted, deduplicated set of transactions in place — the
    /// retraction primitive behind incremental cube maintenance.
    ///
    /// Surviving transactions are renumbered downwards (`tid' = tid −
    /// |removed ≤ tid|`), exactly the ids a from-scratch build on the
    /// edited data would assign, so snapshot byte-identity survives
    /// retraction. When the removed set is a suffix of the tid space the
    /// renumbering is the identity and every affected posting shrinks in
    /// place via [`Posting::remove_sorted`]; otherwise the postings are
    /// rebuilt from the surviving rows in one pass. Items are never dropped
    /// here even when their posting empties — dictionary garbage collection
    /// is the cube layer's relabeling concern.
    ///
    /// Errors (leaving `self` untouched) when `tids` is unsorted, contains
    /// duplicates, or references a transaction `>= n_transactions`.
    pub fn remove_rows(&mut self, tids: &[u32]) -> std::result::Result<(), String> {
        for w in tids.windows(2) {
            if w[0] >= w[1] {
                return Err("removed tids must be strictly increasing".into());
            }
        }
        if tids.last().is_some_and(|&t| t >= self.n_transactions) {
            return Err(format!(
                "removed tid {} out of range (have {} transactions)",
                tids.last().unwrap(),
                self.n_transactions
            ));
        }
        if tids.is_empty() {
            return Ok(());
        }
        let is_suffix = tids[0] as usize == self.n_transactions as usize - tids.len();
        if is_suffix {
            // Tail retraction: survivors keep their ids; clear the removed
            // tail bits posting by posting.
            let mut scratch = Vec::new();
            for posting in &mut self.postings {
                scratch.clear();
                posting.for_each(|tid| {
                    if tid >= tids[0] {
                        scratch.push(tid);
                    }
                });
                posting.remove_sorted(&scratch);
            }
        } else {
            // Interior retraction: renumber by rebuilding each posting from
            // the surviving ids in one merge pass over the removal set.
            let mut keep = Vec::new();
            for posting in &mut self.postings {
                keep.clear();
                let mut r = 0usize;
                posting.for_each(|tid| {
                    while r < tids.len() && tids[r] < tid {
                        r += 1;
                    }
                    if r < tids.len() && tids[r] == tid {
                        return;
                    }
                    keep.push(tid - r as u32);
                });
                *posting = P::from_sorted(&keep);
            }
        }
        let mut r = 0usize;
        let mut write = 0usize;
        for tid in 0..self.n_transactions as usize {
            if r < tids.len() && tids[r] as usize == tid {
                r += 1;
                continue;
            }
            self.unit_of[write] = self.unit_of[tid];
            write += 1;
        }
        self.unit_of.truncate(write);
        self.n_transactions -= tids.len() as u32;
        Ok(())
    }

    /// Reconstruct the horizontal rows: per transaction, its sorted item
    /// ids plus its unit. One pass over every posting — the retraction
    /// path uses this to match removal rows, pick closedness witnesses,
    /// and re-derive dictionary intern order.
    pub fn transactions(&self) -> Vec<(Vec<ItemId>, UnitId)> {
        let mut rows: Vec<(Vec<ItemId>, UnitId)> =
            self.unit_of.iter().map(|&u| (Vec::new(), u)).collect();
        for (item, posting) in self.postings.iter().enumerate() {
            posting.for_each(|tid| rows[tid as usize].0.push(item as ItemId));
        }
        rows
    }

    /// Posting of one item.
    pub fn posting(&self, item: ItemId) -> &P {
        &self.postings[item as usize]
    }

    /// All item postings, indexed by item id.
    pub fn postings(&self) -> &[P] {
        &self.postings
    }

    /// Number of items with postings.
    pub fn num_items(&self) -> usize {
        self.postings.len()
    }

    /// Number of transactions.
    pub fn num_transactions(&self) -> u32 {
        self.n_transactions
    }

    /// Number of organizational units.
    pub fn num_units(&self) -> u32 {
        self.n_units
    }

    /// Unit of a transaction.
    pub fn unit_of(&self, tid: u32) -> UnitId {
        self.unit_of[tid as usize]
    }

    /// The full `tid → unit` map.
    pub fn units(&self) -> &[UnitId] {
        &self.unit_of
    }

    /// Tidset of an itemset (intersection of item postings), or the
    /// universe when the itemset is empty.
    ///
    /// Routed through the batched k-way AND ([`Posting::intersect_many`]):
    /// smallest posting first, empty short-circuit, and no per-step posting
    /// allocation however many items the set has.
    pub fn tidset(&self, itemset: &[ItemId]) -> P {
        match itemset {
            [] => P::full(self.n_transactions),
            [single] => self.postings[*single as usize].clone(),
            _ => {
                let refs: Vec<&P> = itemset.iter().map(|&it| &self.postings[it as usize]).collect();
                P::intersect_many(&refs).expect("non-empty itemset")
            }
        }
    }

    /// Support of an itemset: the batched AND over all but the largest
    /// posting, then one streaming `and_cardinality` — the final (and
    /// biggest) intersection is never materialized.
    pub fn support(&self, itemset: &[ItemId]) -> u64 {
        match itemset {
            [] => u64::from(self.n_transactions),
            [single] => self.postings[*single as usize].cardinality(),
            [a, b] => self.postings[*a as usize].and_cardinality(&self.postings[*b as usize]),
            _ => {
                let mut refs: Vec<&P> =
                    itemset.iter().map(|&it| &self.postings[it as usize]).collect();
                refs.sort_by_cached_key(|p| p.cardinality());
                let (largest, init) = refs.split_last().expect("len >= 3");
                match P::intersect_many(init) {
                    Some(acc) if !acc.is_empty() => acc.and_cardinality(largest),
                    _ => 0,
                }
            }
        }
    }

    /// Per-unit head-counts of a tidset: `counts[u]` = transactions of the
    /// tidset belonging to unit `u`. This is the histogram primitive behind
    /// every cube cell.
    pub fn unit_histogram(&self, tids: &P) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_units as usize];
        tids.for_each(|tid| counts[self.unit_of[tid as usize] as usize] += 1);
        counts
    }

    /// As [`unit_histogram`](Self::unit_histogram), but into a reusable
    /// [`UnitScratch`]: no allocation, and the subsequent reset costs
    /// O(|touched units|) instead of O(n_units). This is what makes cube
    /// cell evaluation O(Σ|tidset|) overall rather than
    /// O(cells × n_units).
    pub fn unit_histogram_into(&self, tids: &P, scratch: &mut UnitScratch) {
        assert_eq!(
            scratch.counts.len(),
            self.n_units as usize,
            "scratch sized for a different unit count"
        );
        scratch.clear();
        tids.for_each(|tid| {
            let u = self.unit_of[tid as usize];
            let slot = &mut scratch.counts[u as usize];
            if *slot == 0 {
                scratch.touched.push(u);
            }
            *slot += 1;
        });
    }
}

/// Reusable scratch space for per-unit histograms: a dense count array plus
/// the list of units actually touched by the last fill.
///
/// One scratch per worker thread lets the cube builder evaluate millions of
/// cells without a single histogram allocation.
#[derive(Debug, Clone)]
pub struct UnitScratch {
    counts: Vec<u64>,
    touched: Vec<UnitId>,
}

impl UnitScratch {
    /// Scratch for databases with `n_units` organizational units.
    pub fn new(n_units: u32) -> Self {
        UnitScratch { counts: vec![0; n_units as usize], touched: Vec::new() }
    }

    /// The dense count array (zero for untouched units).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of one unit.
    #[inline]
    pub fn count_of(&self, unit: UnitId) -> u64 {
        self.counts[unit as usize]
    }

    /// Units with nonzero counts, in fill order (unsorted).
    pub fn touched(&self) -> &[UnitId] {
        &self.touched
    }

    /// Add one observation of `unit` — the manual fill used for delta
    /// histograms whose transactions are not (or no longer) in any
    /// database, e.g. batch rows before they are appended and retracted
    /// rows after they are resolved.
    #[inline]
    pub fn bump(&mut self, unit: UnitId) {
        let slot = &mut self.counts[unit as usize];
        if *slot == 0 {
            self.touched.push(unit);
        }
        *slot += 1;
    }

    /// `(unit, count)` pairs of the touched units, ascending by unit.
    pub fn sorted_pairs(&mut self) -> Vec<(UnitId, u64)> {
        self.touched.sort_unstable();
        self.touched.iter().map(|&u| (u, self.counts[u as usize])).collect()
    }

    /// Zero the touched entries (cheaper than clearing the whole array).
    pub fn clear(&mut self) {
        for &u in &self.touched {
            self.counts[u as usize] = 0;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::transactions::TransactionDbBuilder;
    use scube_bitmap::{DenseBitmap, TidVec};

    fn small_db() -> TransactionDb {
        let schema = Schema::new(vec![Attribute::sa("g"), Attribute::ca("r")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        b.add_row(&[vec!["F"], vec!["n"]], "u0").unwrap();
        b.add_row(&[vec!["M"], vec!["n"]], "u0").unwrap();
        b.add_row(&[vec!["F"], vec!["s"]], "u1").unwrap();
        b.add_row(&[vec!["F"], vec!["n"]], "u1").unwrap();
        b.finish()
    }

    fn item(db: &TransactionDb, attr: u16, v: &str) -> ItemId {
        db.dictionary().get(attr, v).unwrap()
    }

    #[test]
    fn postings_match_horizontal() {
        let db = small_db();
        let v: VerticalDb = VerticalDb::build(&db);
        let f = item(&db, 0, "F");
        let n = item(&db, 1, "n");
        assert_eq!(v.posting(f).to_vec(), vec![0, 2, 3]);
        assert_eq!(v.posting(n).to_vec(), vec![0, 1, 3]);
    }

    #[test]
    fn tidset_and_support() {
        let db = small_db();
        let v: VerticalDb = VerticalDb::build(&db);
        let f = item(&db, 0, "F");
        let n = item(&db, 1, "n");
        assert_eq!(v.tidset(&[f, n]).to_vec(), vec![0, 3]);
        assert_eq!(v.support(&[f, n]), 2);
        assert_eq!(v.support(&[]), 4);
        assert_eq!(v.support(&[f]), 3);
        assert_eq!(v.tidset(&[]).cardinality(), 4);
    }

    #[test]
    fn unit_histogram() {
        let db = small_db();
        let v: VerticalDb = VerticalDb::build(&db);
        let f = item(&db, 0, "F");
        let h = v.unit_histogram(v.posting(f));
        assert_eq!(h, vec![1, 2]); // F in u0 once, in u1 twice
    }

    #[test]
    fn scratch_histogram_matches_dense() {
        let db = small_db();
        let v: VerticalDb = VerticalDb::build(&db);
        let f = item(&db, 0, "F");
        let n = item(&db, 1, "n");
        let mut scratch = UnitScratch::new(v.num_units());
        for items in [vec![f], vec![n], vec![f, n], vec![]] {
            let tids = v.tidset(&items);
            let dense = v.unit_histogram(&tids);
            v.unit_histogram_into(&tids, &mut scratch);
            assert_eq!(scratch.counts(), &dense[..], "{items:?}");
            let pairs = scratch.sorted_pairs();
            let expected: Vec<(u32, u64)> = dense
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(u, &c)| (u as u32, c))
                .collect();
            assert_eq!(pairs, expected, "{items:?}");
        }
        // A second fill after clear() starts from zero.
        v.unit_histogram_into(&v.tidset(&[f]), &mut scratch);
        assert_eq!(scratch.counts(), &[1, 2]);
        assert_eq!(scratch.count_of(1), 2);
    }

    #[test]
    fn from_parts_roundtrip_and_validation() {
        let db = small_db();
        let v: VerticalDb = VerticalDb::build(&db);
        let rebuilt = VerticalDb::from_parts(
            v.postings().to_vec(),
            v.num_transactions(),
            v.units().to_vec(),
            v.num_units(),
        )
        .expect("parts of a built db are consistent");
        assert_eq!(rebuilt.num_transactions(), v.num_transactions());
        assert_eq!(rebuilt.units(), v.units());
        for it in 0..v.num_items() {
            assert_eq!(rebuilt.posting(it as ItemId).to_vec(), v.posting(it as ItemId).to_vec());
        }
        // Unit map length mismatch.
        assert!(VerticalDb::from_parts(v.postings().to_vec(), 3, v.units().to_vec(), 2).is_none());
        // Unit id out of range.
        assert!(VerticalDb::from_parts(v.postings().to_vec(), 4, vec![0, 0, 2, 1], 2).is_none());
        // Posting tid out of range.
        let bad = vec![EwahBitmap::from_sorted(&[9])];
        assert!(VerticalDb::<EwahBitmap>::from_parts(bad, 4, v.units().to_vec(), 2).is_none());
    }

    #[test]
    fn append_rows_matches_from_scratch_build() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            let db = small_db();
            let mut v: VerticalDb<P> = VerticalDb::build(&db);
            // Two appended rows: one over existing items, one introducing
            // item 4 ("M","s" exist; pretend a new value got id 4) and
            // unit 2.
            let rows = vec![(vec![0, 2], 0u32), (vec![1, 3, 4], 2u32)];
            v.append_rows(&rows, 5, 3).unwrap();
            assert_eq!(v.num_transactions(), 6);
            assert_eq!(v.num_units(), 3);
            assert_eq!(v.num_items(), 5);
            assert_eq!(v.units(), &[0, 0, 1, 1, 0, 2]);
            // Compare against rebuilding the concatenated data directly.
            let base: VerticalDb<P> = VerticalDb::build(&db);
            let mut tids: Vec<Vec<u32>> =
                (0..base.num_items()).map(|it| base.posting(it as ItemId).to_vec()).collect();
            tids.resize(5, Vec::new());
            for (i, (items, _)) in rows.iter().enumerate() {
                for &it in items {
                    tids[it as usize].push(4 + i as u32);
                }
            }
            for (it, expected) in tids.iter().enumerate() {
                assert_eq!(&v.posting(it as ItemId).to_vec(), expected, "item {it}");
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
    }

    #[test]
    fn append_rows_rejects_bad_batches_untouched() {
        let db = small_db();
        let mut v: VerticalDb = VerticalDb::build(&db);
        let before_units = v.units().to_vec();
        // Unknown item, unknown unit, unsorted items, shrinking spaces.
        assert!(v.append_rows(&[(vec![9], 0)], 4, 2).is_err());
        assert!(v.append_rows(&[(vec![0], 7)], 4, 2).is_err());
        assert!(v.append_rows(&[(vec![2, 1], 0)], 4, 2).is_err());
        assert!(v.append_rows(&[], 1, 2).is_err());
        assert!(v.append_rows(&[], 4, 1).is_err());
        assert_eq!(v.num_transactions(), 4, "failed appends must not mutate");
        assert_eq!(v.units(), &before_units[..]);
    }

    #[test]
    fn remove_rows_matches_from_scratch_build() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            // Remove an interior row (renumbering) and a suffix row (tail
            // surgery); both must equal a rebuild on the surviving rows.
            for removed in [vec![1u32], vec![3u32], vec![0u32, 2], vec![2u32, 3], vec![]] {
                let db = small_db();
                let mut v: VerticalDb<P> = VerticalDb::build(&db);
                v.remove_rows(&removed).unwrap();
                let survivors: Vec<usize> =
                    (0..4).filter(|&t| !removed.contains(&(t as u32))).collect();
                assert_eq!(v.num_transactions(), survivors.len() as u32, "{removed:?}");
                let expected_units: Vec<u32> = survivors.iter().map(|&t| db.units()[t]).collect();
                assert_eq!(v.units(), &expected_units[..], "{removed:?}");
                for it in 0..v.num_items() {
                    let base: VerticalDb<P> = VerticalDb::build(&db);
                    let expected: Vec<u32> = base
                        .posting(it as ItemId)
                        .to_vec()
                        .into_iter()
                        .filter_map(|t| survivors.iter().position(|&s| s as u32 == t))
                        .map(|t| t as u32)
                        .collect();
                    assert_eq!(v.posting(it as ItemId).to_vec(), expected, "{removed:?} item {it}");
                }
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
    }

    #[test]
    fn remove_rows_rejects_bad_input_untouched() {
        let db = small_db();
        let mut v: VerticalDb = VerticalDb::build(&db);
        assert!(v.remove_rows(&[4]).is_err(), "out of range");
        assert!(v.remove_rows(&[1, 1]).is_err(), "duplicate");
        assert!(v.remove_rows(&[2, 1]).is_err(), "unsorted");
        assert_eq!(v.num_transactions(), 4, "failed removals must not mutate");
    }

    #[test]
    fn transactions_reconstruct_rows() {
        let db = small_db();
        let v: VerticalDb = VerticalDb::build(&db);
        let rows = v.transactions();
        assert_eq!(rows.len(), 4);
        for (t, (items, unit)) in rows.iter().enumerate() {
            assert_eq!(items.as_slice(), db.transaction(t), "row {t}");
            assert_eq!(*unit, db.units()[t], "row {t}");
        }
    }

    #[test]
    fn generic_over_representations() {
        let db = small_db();
        let e: VerticalDb<EwahBitmap> = VerticalDb::build(&db);
        let d: VerticalDb<DenseBitmap> = VerticalDb::build(&db);
        let t: VerticalDb<TidVec> = VerticalDb::build(&db);
        let f = item(&db, 0, "F");
        let n = item(&db, 1, "n");
        for items in [vec![f], vec![n], vec![f, n]] {
            assert_eq!(e.support(&items), d.support(&items));
            assert_eq!(d.support(&items), t.support(&items));
            assert_eq!(e.tidset(&items).to_vec(), t.tidset(&items).to_vec());
        }
    }
}
