//! Horizontal transaction database: one transaction per individual.
//!
//! A transaction holds the sorted item ids of the individual's SA and CA
//! attribute values (several per attribute when multi-valued), plus the id
//! of the organizational unit the individual belongs to. The unit is *not*
//! an item: the cube builder partitions every tidset by unit to obtain the
//! per-unit `(m_i, t_i)` histograms that segregation indexes consume.

use scube_common::{FxHashMap, Result, ScubeError};

use crate::dictionary::{Dictionary, ItemId};
use crate::schema::{AttrId, AttrRole, Schema};

/// Unit identifier (dense, assigned by the builder).
pub type UnitId = u32;

/// Encoded transaction database.
#[derive(Debug, Clone)]
pub struct TransactionDb {
    schema: Schema,
    dictionary: Dictionary,
    /// Flattened transactions: `offsets[t]..offsets[t+1]` indexes `items`.
    items: Vec<ItemId>,
    offsets: Vec<u32>,
    units: Vec<UnitId>,
    unit_names: Vec<String>,
}

impl TransactionDb {
    /// Number of transactions (individuals).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Number of distinct organizational units.
    pub fn num_units(&self) -> usize {
        self.unit_names.len()
    }

    /// The schema the items were encoded under.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The item dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The sorted items of transaction `t`.
    pub fn transaction(&self, t: usize) -> &[ItemId] {
        &self.items[self.offsets[t] as usize..self.offsets[t + 1] as usize]
    }

    /// Unit of transaction `t`.
    pub fn unit_of(&self, t: usize) -> UnitId {
        self.units[t]
    }

    /// The `tid → unit` mapping as a slice.
    pub fn units(&self) -> &[UnitId] {
        &self.units
    }

    /// Display name of a unit.
    pub fn unit_name(&self, unit: UnitId) -> &str {
        &self.unit_names[unit as usize]
    }

    /// All unit names, indexed by [`UnitId`].
    pub fn unit_names(&self) -> &[String] {
        &self.unit_names
    }

    /// Iterate `(items, unit)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[ItemId], UnitId)> + '_ {
        (0..self.len()).map(move |t| (self.transaction(t), self.units[t]))
    }

    /// Is `item` a segregation-attribute item?
    pub fn is_sa_item(&self, item: ItemId) -> bool {
        self.schema.attr(self.dictionary.attr_of(item)).role == AttrRole::Segregation
    }

    /// Human-readable `attr=value` label of an item.
    pub fn item_label(&self, item: ItemId) -> String {
        let attr = self.dictionary.attr_of(item);
        format!("{}={}", self.schema.attr(attr).name, self.dictionary.value_of(item))
    }

    /// Per-item absolute support (number of transactions containing it).
    pub fn item_supports(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.dictionary.len()];
        for &it in &self.items {
            counts[it as usize] += 1;
        }
        counts
    }
}

/// Incremental builder for [`TransactionDb`].
#[derive(Debug)]
pub struct TransactionDbBuilder {
    schema: Schema,
    dictionary: Dictionary,
    items: Vec<ItemId>,
    offsets: Vec<u32>,
    units: Vec<UnitId>,
    unit_names: Vec<String>,
    unit_lookup: FxHashMap<String, UnitId>,
    scratch: Vec<ItemId>,
}

impl TransactionDbBuilder {
    /// Start building under the given schema.
    pub fn new(schema: Schema) -> Self {
        TransactionDbBuilder {
            schema,
            dictionary: Dictionary::new(),
            items: Vec::new(),
            offsets: vec![0],
            units: Vec::new(),
            unit_names: Vec::new(),
            unit_lookup: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Number of rows added so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no rows have been added yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern a unit name, returning its dense id.
    pub fn intern_unit(&mut self, name: &str) -> UnitId {
        if let Some(&u) = self.unit_lookup.get(name) {
            return u;
        }
        let u = self.unit_names.len() as UnitId;
        self.unit_names.push(name.to_string());
        self.unit_lookup.insert(name.to_string(), u);
        u
    }

    /// Validate and dictionary-encode one row *without* appending it to the
    /// horizontal store: the sorted, deduplicated item ids land in an
    /// internal scratch buffer (borrowed by the return value) and the unit
    /// name is interned. [`Self::add_row`] is exactly this plus the append;
    /// the chunked vertical builder calls it directly, so both construction
    /// paths intern through literally the same code and the first-occurrence
    /// dictionary order that snapshot byte-identity depends on cannot drift
    /// between them.
    pub fn encode_row<S: AsRef<str>>(
        &mut self,
        values: &[Vec<S>],
        unit: &str,
    ) -> Result<(UnitId, &[ItemId])> {
        if values.len() != self.schema.len() {
            return Err(ScubeError::Schema(format!(
                "row has {} attribute slots, schema has {}",
                values.len(),
                self.schema.len()
            )));
        }
        self.scratch.clear();
        for (a, vals) in values.iter().enumerate() {
            let attr = a as AttrId;
            if !self.schema.attr(attr).multi_valued && vals.len() > 1 {
                return Err(ScubeError::Schema(format!(
                    "attribute '{}' is single-valued but got {} values",
                    self.schema.attr(attr).name,
                    vals.len()
                )));
            }
            for v in vals {
                let v = v.as_ref().trim();
                if v.is_empty() {
                    continue; // missing value ⇒ no item
                }
                self.scratch.push(self.dictionary.intern(attr, v));
            }
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let unit_id = self.intern_unit(unit);
        Ok((unit_id, &self.scratch))
    }

    /// Add one individual.
    ///
    /// `values[a]` holds the values of attribute `a` (one entry for single-
    /// valued attributes, several for multi-valued ones; empty = missing).
    pub fn add_row<S: AsRef<str>>(&mut self, values: &[Vec<S>], unit: &str) -> Result<()> {
        let (unit_id, _) = self.encode_row(values, unit)?;
        self.items.extend_from_slice(&self.scratch);
        self.offsets.push(self.items.len() as u32);
        self.units.push(unit_id);
        Ok(())
    }

    /// The schema rows are encoded under.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The item dictionary interned so far.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Number of distinct units interned so far.
    pub fn num_units(&self) -> usize {
        self.unit_names.len()
    }

    /// Tear down into the encoding state — schema, dictionary, unit names —
    /// without the horizontal rows. The chunked vertical builder keeps this
    /// after the postings have absorbed every row; the rows themselves were
    /// never accumulated here.
    pub fn into_encoding_parts(self) -> (Schema, Dictionary, Vec<String>) {
        (self.schema, self.dictionary, self.unit_names)
    }

    /// Finish, producing the immutable database.
    pub fn finish(self) -> TransactionDb {
        TransactionDb {
            schema: self.schema,
            dictionary: self.dictionary,
            items: self.items,
            offsets: self.offsets,
            units: self.units,
            unit_names: self.unit_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::sa("gender"),
            Attribute::ca("region"),
            Attribute::ca("sector").multi(),
        ])
        .unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let mut b = TransactionDbBuilder::new(schema());
        b.add_row(&[vec!["F"], vec!["north"], vec!["edu", "transport"]], "u1").unwrap();
        b.add_row(&[vec!["M"], vec!["south"], vec!["edu"]], "u2").unwrap();
        b.add_row(&[vec!["F"], vec!["north"], vec![]], "u1").unwrap();
        let db = b.finish();
        assert_eq!(db.len(), 3);
        assert_eq!(db.num_units(), 2);
        assert_eq!(db.transaction(0).len(), 4);
        assert_eq!(db.transaction(2).len(), 2);
        assert_eq!(db.unit_of(0), db.unit_of(2));
        assert_ne!(db.unit_of(0), db.unit_of(1));
        assert_eq!(db.unit_name(0), "u1");
    }

    #[test]
    fn items_are_sorted_and_deduped() {
        let mut b = TransactionDbBuilder::new(schema());
        b.add_row(&[vec!["F"], vec!["north"], vec!["edu", "edu"]], "u").unwrap();
        let db = b.finish();
        let t = db.transaction(0);
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn missing_values_skipped() {
        let mut b = TransactionDbBuilder::new(schema());
        b.add_row(&[vec![""], vec!["  "], vec![]], "u").unwrap();
        let db = b.finish();
        assert_eq!(db.transaction(0).len(), 0);
    }

    #[test]
    fn multi_value_on_single_valued_attr_rejected() {
        let mut b = TransactionDbBuilder::new(schema());
        let err = b.add_row(&[vec!["F", "M"], vec!["north"], vec![]], "u").unwrap_err();
        assert!(err.to_string().contains("single-valued"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut b = TransactionDbBuilder::new(schema());
        let err = b.add_row(&[vec!["F"]], "u").unwrap_err();
        assert!(err.to_string().contains("attribute slots"));
    }

    #[test]
    fn sa_ca_item_classification() {
        let mut b = TransactionDbBuilder::new(schema());
        b.add_row(&[vec!["F"], vec!["north"], vec!["edu"]], "u").unwrap();
        let db = b.finish();
        let t: Vec<ItemId> = db.transaction(0).to_vec();
        let sa: Vec<bool> = t.iter().map(|&i| db.is_sa_item(i)).collect();
        assert_eq!(sa.iter().filter(|&&x| x).count(), 1);
        let labels: Vec<String> = t.iter().map(|&i| db.item_label(i)).collect();
        assert!(labels.contains(&"gender=F".to_string()));
        assert!(labels.contains(&"region=north".to_string()));
        assert!(labels.contains(&"sector=edu".to_string()));
    }

    #[test]
    fn item_supports() {
        let mut b = TransactionDbBuilder::new(schema());
        b.add_row(&[vec!["F"], vec!["north"], vec![]], "u").unwrap();
        b.add_row(&[vec!["F"], vec!["south"], vec![]], "u").unwrap();
        let db = b.finish();
        let f = db.dictionary().get(0, "F").unwrap();
        assert_eq!(db.item_supports()[f as usize], 2);
    }
}
