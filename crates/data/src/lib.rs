#![warn(missing_docs)]
//! Relational and transaction data layer for SCube.
//!
//! SCube analyses a population table with *segregation attributes* (SA),
//! *context attributes* (CA) and a `unitID` column (the paper's
//! `finalTable`, Fig. 3). This crate provides the whole journey from CSV to
//! mining-ready structures:
//!
//! * [`schema`] — attributes with SA/CA roles and multi-valued flags;
//! * [`relation`] — untyped CSV-backed tables ([`Relation`]);
//! * [`final_table`] — the [`FinalTableSpec`] role declaration and encoder;
//! * [`dictionary`] — interning of `attr=value` items to dense `u32` ids;
//! * [`transactions`] — the horizontal [`TransactionDb`] (one transaction
//!   per individual, unit id carried alongside);
//! * [`vertical`] — the item→tidset [`VerticalDb`], generic over tidset
//!   representation ([`scube_bitmap::Posting`]);
//! * [`chunked`] — bounded-memory construction: [`VerticalDbBuilder`]
//!   grows the postings chunk by chunk without ever materializing the
//!   horizontal table.

pub mod chunked;
pub mod dictionary;
pub mod final_table;
pub mod relation;
pub mod schema;
pub mod transactions;
pub mod vertical;

pub use chunked::{ChunkedBuildStats, TableMeta, VerticalDbBuilder, DEFAULT_CHUNK_ROWS};
pub use dictionary::{Dictionary, ItemId};
pub use final_table::{FinalTableEncoder, FinalTableSpec, RowSink, MULTI_VALUE_SEPARATOR};
pub use relation::{CsvRows, Relation};
pub use schema::{AttrId, AttrRole, Attribute, Schema};
pub use transactions::{TransactionDb, TransactionDbBuilder, UnitId};
pub use vertical::{UnitScratch, VerticalDb};
