//! Chunked, bounded-memory construction of a [`VerticalDb`].
//!
//! The resident build path materializes the whole horizontal
//! [`crate::TransactionDb`] before transposing it into postings — at 10⁷
//! rows that is gigabytes of items and offsets held only to be thrown away.
//! [`VerticalDbBuilder`] skips the horizontal table entirely: rows are
//! dictionary-encoded one at a time through the *same*
//! [`TransactionDbBuilder`] interning code (so first-occurrence item and
//! unit order — the canonical labeling snapshot byte-identity depends on —
//! cannot drift), staged in a bounded chunk, and folded into the postings
//! via [`VerticalDb::append_rows`]. Chunks arrive in ascending tid order,
//! so every flush is a pure posting tail-append
//! ([`scube_bitmap::Posting::append_sorted`]) — no merge sort, and the
//! grown postings are byte-identical to a one-shot build's.
//!
//! Peak memory is therefore bounded by the *output* (postings + dictionary)
//! plus one chunk of staged rows, never by the input table.

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::{Result, ScubeError};

use crate::dictionary::{Dictionary, ItemId};
use crate::schema::{AttrRole, Schema};
use crate::transactions::{TransactionDbBuilder, UnitId};
use crate::vertical::VerticalDb;

/// Default chunk size: large enough that per-flush posting-append overhead
/// amortizes away, small enough that staged rows stay a rounding error next
/// to the postings themselves.
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// The encoding state of a table without its rows: schema, item
/// dictionary, and unit names. What the chunked build keeps where the
/// resident path would keep a whole [`crate::TransactionDb`] — everything
/// the cube layer needs for labeling cells, and nothing that grows with
/// the row count.
#[derive(Debug, Clone)]
pub struct TableMeta {
    schema: Schema,
    dictionary: Dictionary,
    unit_names: Vec<String>,
}

impl TableMeta {
    /// Assemble from parts (normally produced by
    /// [`VerticalDbBuilder::finish`]).
    pub fn new(schema: Schema, dictionary: Dictionary, unit_names: Vec<String>) -> Self {
        TableMeta { schema, dictionary, unit_names }
    }

    /// The schema the items were encoded under.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The item dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// All unit names, indexed by [`UnitId`].
    pub fn unit_names(&self) -> &[String] {
        &self.unit_names
    }

    /// Number of distinct organizational units.
    pub fn num_units(&self) -> usize {
        self.unit_names.len()
    }

    /// Is `item` a segregation-attribute item?
    pub fn is_sa_item(&self, item: ItemId) -> bool {
        self.schema.attr(self.dictionary.attr_of(item)).role == AttrRole::Segregation
    }
}

/// What the chunked build held resident at its fullest moment — the
/// numbers a `--chunk-rows` run reports so scale logs are self-describing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkedBuildStats {
    /// Configured chunk capacity (rows per flush).
    pub chunk_rows: usize,
    /// Total rows consumed.
    pub rows: usize,
    /// Number of chunk flushes into the postings.
    pub flushes: usize,
    /// Rows staged at the fullest flush (≤ `chunk_rows`).
    pub peak_chunk_rows: usize,
    /// Item ids staged at the fullest flush.
    pub peak_chunk_items: usize,
}

/// Streaming builder of a [`VerticalDb`]: rows in, postings out, no
/// horizontal table in between (see the module docs).
#[derive(Debug)]
pub struct VerticalDbBuilder<P: Posting = EwahBitmap> {
    /// Dictionary/unit interning engine. Rows are encoded through
    /// [`TransactionDbBuilder::encode_row`] only — its horizontal stores
    /// (items, offsets, units) never grow on this path.
    encoder: TransactionDbBuilder,
    vertical: VerticalDb<P>,
    chunk: Vec<(Vec<ItemId>, UnitId)>,
    chunk_items: usize,
    chunk_rows: usize,
    stats: ChunkedBuildStats,
}

impl<P: Posting> VerticalDbBuilder<P> {
    /// Start building under the given schema, flushing every `chunk_rows`
    /// rows (clamped to at least 1).
    pub fn new(schema: Schema, chunk_rows: usize) -> Self {
        let chunk_rows = chunk_rows.max(1);
        VerticalDbBuilder {
            encoder: TransactionDbBuilder::new(schema),
            vertical: VerticalDb::empty(),
            chunk: Vec::new(),
            chunk_items: 0,
            chunk_rows,
            stats: ChunkedBuildStats { chunk_rows, ..Default::default() },
        }
    }

    /// Number of rows consumed so far (flushed + staged).
    pub fn len(&self) -> usize {
        self.vertical.num_transactions() as usize + self.chunk.len()
    }

    /// True when no rows have been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add one individual — same contract as
    /// [`TransactionDbBuilder::add_row`]: `values[a]` holds the values of
    /// attribute `a`, `unit` the unit name. The row is encoded immediately
    /// (dictionary and unit interning happen in row order, exactly as the
    /// resident path would) and staged; a full chunk flushes into the
    /// postings.
    pub fn add_row<S: AsRef<str>>(&mut self, values: &[Vec<S>], unit: &str) -> Result<()> {
        let (unit_id, items) = self.encoder.encode_row(values, unit)?;
        self.chunk_items += items.len();
        self.chunk.push((items.to_vec(), unit_id));
        if self.chunk.len() >= self.chunk_rows {
            self.flush()?;
        }
        Ok(())
    }

    /// Fold the staged chunk into the postings. Rows were staged in tid
    /// order, so this is a pure tail-append per touched item.
    fn flush(&mut self) -> Result<()> {
        if self.chunk.is_empty() {
            return Ok(());
        }
        self.stats.flushes += 1;
        self.stats.peak_chunk_rows = self.stats.peak_chunk_rows.max(self.chunk.len());
        self.stats.peak_chunk_items = self.stats.peak_chunk_items.max(self.chunk_items);
        self.vertical
            .append_rows(
                &self.chunk,
                self.encoder.dictionary().len(),
                self.encoder.num_units() as u32,
            )
            .map_err(ScubeError::Inconsistent)?;
        self.chunk.clear();
        self.chunk_items = 0;
        Ok(())
    }

    /// Flush the final partial chunk and tear down into the grown vertical
    /// database, the table metadata (dictionary, schema, unit names), and
    /// the residency stats.
    pub fn finish(mut self) -> Result<(VerticalDb<P>, TableMeta, ChunkedBuildStats)> {
        self.flush()?;
        self.stats.rows = self.vertical.num_transactions() as usize;
        let (schema, dictionary, unit_names) = self.encoder.into_encoding_parts();
        Ok((self.vertical, TableMeta::new(schema, dictionary, unit_names), self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use crate::transactions::TransactionDb;
    use scube_bitmap::{AdaptivePosting, DenseBitmap, TidVec};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::sa("gender"),
            Attribute::ca("region"),
            Attribute::ca("sector").multi(),
        ])
        .unwrap()
    }

    fn rows() -> Vec<(Vec<Vec<&'static str>>, &'static str)> {
        vec![
            (vec![vec!["F"], vec!["north"], vec!["edu", "transport"]], "u1"),
            (vec![vec!["M"], vec!["south"], vec!["edu"]], "u2"),
            (vec![vec!["F"], vec!["north"], vec![]], "u1"),
            (vec![vec!["M"], vec!["north"], vec!["agri"]], "u3"),
            (vec![vec!["F"], vec!["south"], vec!["edu"]], "u2"),
        ]
    }

    fn resident() -> TransactionDb {
        let mut b = TransactionDbBuilder::new(schema());
        for (values, unit) in rows() {
            b.add_row(&values, unit).unwrap();
        }
        b.finish()
    }

    fn check_chunked_matches_resident<P: Posting + PartialEq + std::fmt::Debug>(chunk: usize) {
        let db = resident();
        let expected: VerticalDb<P> = VerticalDb::build(&db);
        let mut b: VerticalDbBuilder<P> = VerticalDbBuilder::new(schema(), chunk);
        for (values, unit) in rows() {
            b.add_row(&values, unit).unwrap();
        }
        let (vertical, meta, stats) = b.finish().unwrap();
        assert_eq!(vertical.num_transactions(), expected.num_transactions(), "chunk {chunk}");
        assert_eq!(vertical.units(), expected.units(), "chunk {chunk}");
        assert_eq!(vertical.num_items(), expected.num_items(), "chunk {chunk}");
        for it in 0..expected.num_items() {
            assert_eq!(
                vertical.posting(it as ItemId),
                expected.posting(it as ItemId),
                "chunk {chunk} item {it}"
            );
        }
        // Dictionary intern order must be identical, not just equivalent.
        assert_eq!(meta.dictionary().len(), db.dictionary().len(), "chunk {chunk}");
        for it in 0..db.dictionary().len() as ItemId {
            assert_eq!(meta.dictionary().attr_of(it), db.dictionary().attr_of(it));
            assert_eq!(meta.dictionary().value_of(it), db.dictionary().value_of(it));
            assert_eq!(meta.is_sa_item(it), db.is_sa_item(it));
        }
        assert_eq!(meta.unit_names(), db.unit_names(), "chunk {chunk}");
        assert_eq!(stats.rows, rows().len());
        assert!(stats.peak_chunk_rows <= chunk.max(1));
        assert!(stats.flushes >= rows().len().div_ceil(chunk.max(1)));
    }

    #[test]
    fn chunked_matches_resident_all_representations() {
        for chunk in [1, 2, 3, 100] {
            check_chunked_matches_resident::<EwahBitmap>(chunk);
            check_chunked_matches_resident::<DenseBitmap>(chunk);
            check_chunked_matches_resident::<TidVec>(chunk);
            check_chunked_matches_resident::<AdaptivePosting>(chunk);
        }
    }

    #[test]
    fn empty_build_finishes() {
        let b: VerticalDbBuilder = VerticalDbBuilder::new(schema(), 8);
        assert!(b.is_empty());
        let (vertical, meta, stats) = b.finish().unwrap();
        assert_eq!(vertical.num_transactions(), 0);
        assert_eq!(vertical.num_items(), 0);
        assert_eq!(meta.num_units(), 0);
        assert_eq!(stats.flushes, 0);
        assert_eq!(stats.rows, 0);
    }

    #[test]
    fn encoding_errors_propagate() {
        let mut b: VerticalDbBuilder = VerticalDbBuilder::new(schema(), 8);
        let err = b.add_row(&[vec!["F", "M"], vec![], vec![]], "u").unwrap_err();
        assert!(err.to_string().contains("single-valued"));
        let err = b.add_row(&[vec!["F"]], "u").unwrap_err();
        assert!(err.to_string().contains("attribute slots"));
    }

    #[test]
    fn zero_chunk_rows_clamps_to_one() {
        let mut b: VerticalDbBuilder = VerticalDbBuilder::new(schema(), 0);
        b.add_row(&[vec!["F"], vec!["north"], vec![]], "u").unwrap();
        let (vertical, _, stats) = b.finish().unwrap();
        assert_eq!(vertical.num_transactions(), 1);
        assert_eq!(stats.chunk_rows, 1);
        assert_eq!(stats.peak_chunk_rows, 1);
    }
}
