//! Dictionary encoding of `attribute = value` items.
//!
//! Transactions are sets of *items*; an item is one `(attribute, value)`
//! pair, e.g. `sex=female` or `region=north`. The dictionary interns each
//! distinct pair once and hands out dense `u32` ids, which every downstream
//! structure (FP-trees, tidset postings, cube coordinates) uses instead of
//! strings.

use scube_common::FxHashMap;

use crate::schema::AttrId;

/// Dense id of an interned `(attribute, value)` item.
pub type ItemId = u32;

#[derive(Debug, Clone)]
struct ItemInfo {
    attr: AttrId,
    value: String,
}

/// Interning dictionary for items.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    items: Vec<ItemInfo>,
    lookup: FxHashMap<(AttrId, String), ItemId>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern `(attr, value)`, returning its id (existing or fresh).
    pub fn intern(&mut self, attr: AttrId, value: &str) -> ItemId {
        if let Some(&id) = self.lookup.get(&(attr, value.to_string())) {
            return id;
        }
        let id = self.items.len() as ItemId;
        self.items.push(ItemInfo { attr, value: value.to_string() });
        self.lookup.insert((attr, value.to_string()), id);
        id
    }

    /// Id of an already-interned item.
    pub fn get(&self, attr: AttrId, value: &str) -> Option<ItemId> {
        // Temporary key allocation; lookups are off the hot path.
        self.lookup.get(&(attr, value.to_string())).copied()
    }

    /// Attribute of an item.
    pub fn attr_of(&self, item: ItemId) -> AttrId {
        self.items[item as usize].attr
    }

    /// Value string of an item.
    pub fn value_of(&self, item: ItemId) -> &str {
        &self.items[item as usize].value
    }

    /// Number of interned items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All items of a given attribute.
    pub fn items_of_attr(&self, attr: AttrId) -> Vec<ItemId> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, info)| info.attr == attr)
            .map(|(i, _)| i as ItemId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(0, "female");
        let b = d.intern(0, "female");
        let c = d.intern(1, "female"); // same value, different attribute
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn reverse_lookup() {
        let mut d = Dictionary::new();
        let id = d.intern(3, "north");
        assert_eq!(d.attr_of(id), 3);
        assert_eq!(d.value_of(id), "north");
        assert_eq!(d.get(3, "north"), Some(id));
        assert_eq!(d.get(3, "south"), None);
    }

    #[test]
    fn items_of_attr_filters() {
        let mut d = Dictionary::new();
        let a = d.intern(0, "f");
        let _b = d.intern(1, "x");
        let c = d.intern(0, "m");
        assert_eq!(d.items_of_attr(0), vec![a, c]);
    }
}
