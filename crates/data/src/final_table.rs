//! The `finalTable`: the canonical input of SegregationDataCubeBuilder.
//!
//! Fig. 3 of the paper shows the shape: one row per (individual,
//! organizational unit), segregation-attribute columns, context-attribute
//! columns, and a `unitID` column. [`FinalTableSpec`] declares which column
//! plays which role and [`FinalTableSpec::encode`] turns a [`Relation`]
//! into the dictionary-encoded [`TransactionDb`]. Multi-valued cells use
//! `;` as the in-cell separator (`{electricity, transports}` ⇒
//! `electricity;transports`).

use std::path::Path;

use scube_bitmap::Posting;
use scube_common::{Result, ScubeError};

use crate::chunked::{ChunkedBuildStats, TableMeta, VerticalDbBuilder};
use crate::relation::{CsvRows, Relation};
use crate::schema::{Attribute, Schema};
use crate::transactions::{TransactionDb, TransactionDbBuilder};
use crate::vertical::VerticalDb;

/// In-cell separator for multi-valued attributes.
pub const MULTI_VALUE_SEPARATOR: char = ';';

/// Declares the roles of the columns of a final table.
#[derive(Debug, Clone, Default)]
pub struct FinalTableSpec {
    /// Segregation-attribute columns, with their multi-valued flag.
    pub sa_columns: Vec<(String, bool)>,
    /// Context-attribute columns, with their multi-valued flag.
    pub ca_columns: Vec<(String, bool)>,
    /// The organizational-unit column.
    pub unit_column: String,
}

impl FinalTableSpec {
    /// Start an empty spec with the given unit column.
    pub fn new(unit_column: impl Into<String>) -> Self {
        FinalTableSpec {
            sa_columns: Vec::new(),
            ca_columns: Vec::new(),
            unit_column: unit_column.into(),
        }
    }

    /// Add a single-valued segregation attribute column.
    pub fn sa(mut self, name: impl Into<String>) -> Self {
        self.sa_columns.push((name.into(), false));
        self
    }

    /// Add a multi-valued segregation attribute column.
    pub fn sa_multi(mut self, name: impl Into<String>) -> Self {
        self.sa_columns.push((name.into(), true));
        self
    }

    /// Add a single-valued context attribute column.
    pub fn ca(mut self, name: impl Into<String>) -> Self {
        self.ca_columns.push((name.into(), false));
        self
    }

    /// Add a multi-valued context attribute column.
    pub fn ca_multi(mut self, name: impl Into<String>) -> Self {
        self.ca_columns.push((name.into(), true));
        self
    }

    /// Reconstruct the spec a schema was encoded under (attribute names,
    /// roles, multi-valued flags), so sliced relations of an existing
    /// final table re-encode with identical dictionaries — the base/delta
    /// splits of update experiments and tests rely on this. Exact for
    /// schemas that list SA attributes before CA attributes, which is the
    /// order [`FinalTableSpec::schema`] always produces.
    pub fn from_schema(schema: &Schema, unit_column: impl Into<String>) -> Self {
        let mut spec = FinalTableSpec::new(unit_column);
        for attr in schema.attributes() {
            let columns = match attr.role {
                crate::schema::AttrRole::Segregation => &mut spec.sa_columns,
                crate::schema::AttrRole::Context => &mut spec.ca_columns,
            };
            columns.push((attr.name.clone(), attr.multi_valued));
        }
        spec
    }

    /// The schema induced by the spec (SA attributes first, then CA).
    pub fn schema(&self) -> Result<Schema> {
        let mut attrs = Vec::new();
        for (name, multi) in &self.sa_columns {
            let mut a = Attribute::sa(name.clone());
            a.multi_valued = *multi;
            attrs.push(a);
        }
        for (name, multi) in &self.ca_columns {
            let mut a = Attribute::ca(name.clone());
            a.multi_valued = *multi;
            attrs.push(a);
        }
        Schema::new(attrs)
    }

    /// Encode a relation into a transaction database under this spec.
    pub fn encode(&self, rel: &Relation) -> Result<TransactionDb> {
        let mut enc = self.encoder(rel.columns())?;
        for row in rel.rows() {
            enc.add_record(row)?;
        }
        Ok(enc.finish())
    }

    /// Resolve this spec against a table header: the induced schema, the
    /// column index of every attribute, and the unit column's index.
    fn resolve_columns(&self, columns: &[String]) -> Result<(Schema, Vec<usize>, usize)> {
        let schema = self.schema()?;
        let column_index = |name: &str| columns.iter().position(|c| c == name);
        let mut col_of_attr = Vec::with_capacity(schema.len());
        for attr in schema.attributes() {
            let idx = column_index(&attr.name).ok_or_else(|| {
                ScubeError::Schema(format!("final table misses column '{}'", attr.name))
            })?;
            col_of_attr.push(idx);
        }
        let unit_col = column_index(&self.unit_column).ok_or_else(|| {
            ScubeError::Schema(format!("final table misses unit column '{}'", self.unit_column))
        })?;
        Ok((schema, col_of_attr, unit_col))
    }

    /// Start a streaming encoder over a table with the given `columns`.
    ///
    /// Feed records with [`FinalTableEncoder::add_record`]; only the
    /// dictionary-encoded output accumulates, never the string rows —
    /// peak staging memory is one record regardless of row count.
    pub fn encoder(&self, columns: &[String]) -> Result<FinalTableEncoder> {
        let (schema, col_of_attr, unit_col) = self.resolve_columns(columns)?;
        let builder = TransactionDbBuilder::new(schema.clone());
        Ok(FinalTableEncoder { schema, col_of_attr, unit_col, builder })
    }

    /// Start a *chunked* streaming encoder: records feed a
    /// [`VerticalDbBuilder`] directly, so no horizontal table is ever
    /// materialized — peak memory is the postings plus one `chunk_rows`
    /// chunk of encoded rows. Record parsing (multi-value splitting,
    /// trimming) is shared with [`Self::encoder`], and so is the interning
    /// code underneath, so the output is byte-identical to the resident
    /// path's.
    pub fn chunked_encoder<P: Posting>(
        &self,
        columns: &[String],
        chunk_rows: usize,
    ) -> Result<FinalTableEncoder<VerticalDbBuilder<P>>> {
        let (schema, col_of_attr, unit_col) = self.resolve_columns(columns)?;
        let builder = VerticalDbBuilder::new(schema.clone(), chunk_rows);
        Ok(FinalTableEncoder { schema, col_of_attr, unit_col, builder })
    }

    /// Read a CSV file and encode it, streaming record by record — the
    /// string table is never resident as a whole, so this is safe for
    /// inputs far larger than memory would allow via
    /// [`Relation::read_csv_path`].
    pub fn load_csv(&self, path: impl AsRef<Path>) -> Result<TransactionDb> {
        let mut rows = CsvRows::open_path(path)?;
        let mut enc = self.encoder(rows.columns())?;
        while let Some(row) = rows.next_row()? {
            enc.add_record(row)?;
        }
        Ok(enc.finish())
    }

    /// Read a CSV file straight into postings, chunk by chunk: the
    /// bounded-memory counterpart of [`Self::load_csv`] for builds that
    /// never need the horizontal table. Returns the vertical database, the
    /// table metadata (schema, dictionary, unit names), and the chunk
    /// residency stats.
    pub fn load_csv_chunked<P: Posting>(
        &self,
        path: impl AsRef<Path>,
        chunk_rows: usize,
    ) -> Result<(VerticalDb<P>, TableMeta, ChunkedBuildStats)> {
        let mut rows = CsvRows::open_path(path)?;
        let mut enc = self.chunked_encoder::<P>(rows.columns(), chunk_rows)?;
        while let Some(row) = rows.next_row()? {
            enc.add_record(row)?;
        }
        enc.into_builder().finish()
    }
}

/// Where a [`FinalTableEncoder`] sends its dictionary-encoded rows: the
/// resident [`TransactionDbBuilder`] (horizontal table accumulates) or the
/// chunked [`VerticalDbBuilder`] (postings accumulate, rows don't).
pub trait RowSink {
    /// Add one encoded row; same contract as
    /// [`TransactionDbBuilder::add_row`].
    fn add_row<S: AsRef<str>>(&mut self, values: &[Vec<S>], unit: &str) -> Result<()>;

    /// Rows consumed so far.
    fn len(&self) -> usize;

    /// Whether no rows have been consumed yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RowSink for TransactionDbBuilder {
    fn add_row<S: AsRef<str>>(&mut self, values: &[Vec<S>], unit: &str) -> Result<()> {
        TransactionDbBuilder::add_row(self, values, unit)
    }

    fn len(&self) -> usize {
        TransactionDbBuilder::len(self)
    }
}

impl<P: Posting> RowSink for VerticalDbBuilder<P> {
    fn add_row<S: AsRef<str>>(&mut self, values: &[Vec<S>], unit: &str) -> Result<()> {
        VerticalDbBuilder::add_row(self, values, unit)
    }

    fn len(&self) -> usize {
        VerticalDbBuilder::len(self)
    }
}

/// Streaming counterpart of [`FinalTableSpec::encode`]: records go in one
/// at a time (e.g. from [`CsvRows`]) and only the dictionary-encoded output
/// accumulates — a [`TransactionDb`] through the default
/// [`TransactionDbBuilder`] sink, or postings through a
/// [`VerticalDbBuilder`] sink (see [`FinalTableSpec::chunked_encoder`]).
pub struct FinalTableEncoder<B: RowSink = TransactionDbBuilder> {
    schema: Schema,
    col_of_attr: Vec<usize>,
    unit_col: usize,
    builder: B,
}

impl<B: RowSink> FinalTableEncoder<B> {
    /// Encode one record. Its arity must cover every declared column
    /// (CSV readers enforce this against the header already).
    pub fn add_record(&mut self, row: &[String]) -> Result<()> {
        let width = self.col_of_attr.iter().chain([&self.unit_col]).max().unwrap() + 1;
        if row.len() < width {
            return Err(ScubeError::Schema(format!(
                "record has {} fields, spec needs {width}",
                row.len()
            )));
        }
        let mut values: Vec<Vec<&str>> = vec![Vec::new(); self.schema.len()];
        for (a, attr) in self.schema.attributes().iter().enumerate() {
            let cell = row[self.col_of_attr[a]].as_str();
            if attr.multi_valued {
                values[a].extend(
                    cell.split(MULTI_VALUE_SEPARATOR).map(str::trim).filter(|v| !v.is_empty()),
                );
            } else if !cell.trim().is_empty() {
                values[a].push(cell);
            }
        }
        self.builder.add_row(&values, &row[self.unit_col])
    }

    /// Number of records encoded so far.
    pub fn len(&self) -> usize {
        self.builder.len()
    }

    /// True when no records have been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tear down into the underlying sink (e.g. to
    /// [`VerticalDbBuilder::finish`] a chunked build).
    pub fn into_builder(self) -> B {
        self.builder
    }
}

impl FinalTableEncoder<TransactionDbBuilder> {
    /// Finish into the encoded transaction database.
    pub fn finish(self) -> TransactionDb {
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation() -> Relation {
        let mut r = Relation::new(
            ["gender", "age", "residence", "sector", "unitID"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        )
        .unwrap();
        // Rows mirror the finalTable of the paper's Fig. 3 (left, bottom).
        for row in [
            ["M", "15-38", "north", "education", "1"],
            ["F", "39-46", "south", "electricity;transports", "2"],
            ["M", "55-65", "south", "agriculture", "1"],
        ] {
            r.push_row(row.iter().map(|s| s.to_string()).collect()).unwrap();
        }
        r
    }

    fn spec() -> FinalTableSpec {
        FinalTableSpec::new("unitID").sa("gender").sa("age").ca("residence").ca_multi("sector")
    }

    #[test]
    fn encode_fig3_final_table() {
        let db = spec().encode(&sample_relation()).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.num_units(), 2);
        // Row 1 has a multi-valued sector: 2 SA items + 1 CA + 2 CA = 5.
        assert_eq!(db.transaction(1).len(), 5);
        let labels: Vec<String> = db.transaction(1).iter().map(|&i| db.item_label(i)).collect();
        assert!(labels.contains(&"sector=electricity".to_string()));
        assert!(labels.contains(&"sector=transports".to_string()));
        assert!(labels.contains(&"gender=F".to_string()));
    }

    #[test]
    fn schema_roles_follow_spec() {
        let schema = spec().schema().unwrap();
        assert_eq!(schema.sa_ids().len(), 2);
        assert_eq!(schema.ca_ids().len(), 2);
        assert!(schema.attr(3).multi_valued);
    }

    #[test]
    fn missing_column_is_schema_error() {
        let r = Relation::new(vec!["gender".into(), "unitID".into()]).unwrap();
        let err = spec().encode(&r).unwrap_err();
        assert!(err.to_string().contains("misses column"));
    }

    #[test]
    fn missing_unit_column_is_schema_error() {
        let mut bad = spec();
        bad.unit_column = "nope".into();
        let err = bad.encode(&sample_relation()).unwrap_err();
        assert!(err.to_string().contains("unit column"));
    }

    #[test]
    fn multivalued_whitespace_trimmed() {
        let mut r = Relation::new(vec!["gender".into(), "sector".into(), "u".into()]).unwrap();
        r.push_row(vec!["F".into(), " a ; b ;; ".into(), "x".into()]).unwrap();
        let spec = FinalTableSpec::new("u").sa("gender").ca_multi("sector");
        let db = spec.encode(&r).unwrap();
        let labels: Vec<String> = db.transaction(0).iter().map(|&i| db.item_label(i)).collect();
        assert!(labels.contains(&"sector=a".to_string()));
        assert!(labels.contains(&"sector=b".to_string()));
        assert_eq!(db.transaction(0).len(), 3);
    }
}
